#include "obs/telemetry.hh"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace fdip
{

namespace
{

/** Distinct id per simulation run in this process; used as the trace
 *  pid and the samples "run" field so concurrent Runner threads
 *  sharing one output file stay distinguishable. */
std::atomic<std::uint64_t> nextRunId{1};

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

void
ObsConfig::applyEnv()
{
    if (const char *env = std::getenv("FDIP_SAMPLES");
        env != nullptr && env[0] != '\0') {
        samplesPath = env;
    }
    if (const char *env = std::getenv("FDIP_TRACE");
        env != nullptr && env[0] != '\0') {
        tracePath = env;
    }
    // Malformed values warn and keep the config's default (the shared
    // envUint contract) instead of killing the process: telemetry is
    // passive and must never take a simulation down with it.
    sampleIntervalCycles =
        envUint("FDIP_SAMPLE_INTERVAL", sampleIntervalCycles, 1);
    traceCapacity = static_cast<std::size_t>(
        envUint("FDIP_TRACE_CAP", traceCapacity, 1));
}

/**
 * Append-only sample file shared by every run targeting one path.
 * JSONL by default, CSV when the path ends in ".csv". The first open
 * in the process truncates; the CSV header is written once.
 */
class SampleSink
{
  public:
    explicit SampleSink(const std::string &path)
        : csv(endsWith(path, ".csv")),
          out(path, std::ios::out | std::ios::trunc)
    {
        if (!out.is_open()) {
            warn("cannot open FDIP_SAMPLES file '%s'; sampling output "
                 "dropped", path.c_str());
            return;
        }
        if (csv) {
            out << "run,workload,scheme,cycle,interval_cycles,insts,ipc,"
                   "mpki,pf_accuracy,ftq_occ_mean,walks_queued,"
                   "prefetches_issued\n";
        }
    }

    void
    write(std::uint64_t runId, const std::string &workload,
          const std::string &scheme, const SampleRow &row)
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (!out.is_open())
            return;
        if (csv) {
            out << runId << ',' << workload << ',' << scheme << ','
                << row.cycle << ',' << row.intervalCycles << ','
                << row.insts << ',' << row.ipc << ',' << row.mpki << ','
                << row.pfAccuracy << ',' << row.ftqOccMean << ','
                << row.walksQueued << ',' << row.prefetchesIssued << '\n';
        } else {
            out << "{\"run\":" << runId
                << ",\"workload\":\"" << jsonEscape(workload)
                << "\",\"scheme\":\"" << jsonEscape(scheme)
                << "\",\"cycle\":" << row.cycle
                << ",\"interval_cycles\":" << row.intervalCycles
                << ",\"insts\":" << row.insts
                << ",\"ipc\":" << row.ipc
                << ",\"mpki\":" << row.mpki
                << ",\"pf_accuracy\":" << row.pfAccuracy
                << ",\"ftq_occ_mean\":" << row.ftqOccMean
                << ",\"walks_queued\":" << row.walksQueued
                << ",\"prefetches_issued\":" << row.prefetchesIssued
                << "}\n";
        }
        out.flush();
    }

  private:
    bool csv;
    std::ofstream out;
    std::mutex mtx;
};

/**
 * Chrome trace_event file shared by every run targeting one path. The
 * file is kept valid JSON after every flush: each batch rewinds over
 * the previous `]}` trailer, appends its events, and writes the
 * trailer again.
 */
class TraceSink
{
  public:
    explicit TraceSink(const std::string &path)
        : out(path, std::ios::out | std::ios::trunc)
    {
        if (!out.is_open()) {
            warn("cannot open FDIP_TRACE file '%s'; trace output dropped",
                 path.c_str());
            return;
        }
        out << "{\"traceEvents\":[";
        bodyEnd = out.tellp();
        out << "]}";
        out.flush();
    }

    /** Emit per-run process/thread naming metadata (once per run). */
    void
    beginRun(std::uint64_t runId, const std::string &label)
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (!out.is_open())
            return;
        std::string meta;
        meta += metadataEvent(runId, 0, "process_name", label);
        meta += metadataEvent(runId, kTidFrontend, "thread_name", "frontend");
        meta += metadataEvent(runId, kTidPrefetch, "thread_name", "prefetch");
        meta += metadataEvent(runId, kTidMem, "thread_name", "mem");
        meta += metadataEvent(runId, kTidVm, "thread_name", "vm");
        appendRaw(meta);
    }

    void
    append(std::uint64_t runId, const std::vector<TraceEvent> &events)
    {
        if (events.empty())
            return;
        std::lock_guard<std::mutex> lock(mtx);
        if (!out.is_open())
            return;
        std::string batch;
        for (const TraceEvent &e : events)
            batch += serialize(runId, e);
        appendRaw(batch);
    }

  private:
    std::string
    metadataEvent(std::uint64_t runId, std::uint32_t tid, const char *name,
                  const std::string &value)
    {
        std::string s = anyWritten ? "," : "";
        anyWritten = true;
        s += "{\"name\":\"";
        s += name;
        s += "\",\"ph\":\"M\",\"pid\":" + std::to_string(runId) +
            ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":\"" +
            jsonEscape(value) + "\"}}";
        return s;
    }

    std::string
    serialize(std::uint64_t runId, const TraceEvent &e)
    {
        std::string s = anyWritten ? "," : "";
        anyWritten = true;
        s += "{\"name\":\"";
        s += e.name;
        s += "\",\"ph\":\"";
        s += e.ph;
        s += "\",\"pid\":" + std::to_string(runId) +
            ",\"tid\":" + std::to_string(e.tid) +
            ",\"ts\":" + std::to_string(e.ts);
        if (e.ph == 'X')
            s += ",\"dur\":" + std::to_string(e.dur);
        if (e.ph == 'i')
            s += ",\"s\":\"t\"";
        if (e.argKey != nullptr || e.strKey != nullptr) {
            s += ",\"args\":{";
            bool first = true;
            if (e.argKey != nullptr) {
                s += "\"";
                s += e.argKey;
                s += "\":" + std::to_string(e.argVal);
                first = false;
            }
            if (e.strKey != nullptr) {
                if (!first)
                    s += ",";
                s += "\"";
                s += e.strKey;
                s += "\":\"";
                s += e.strVal != nullptr ? e.strVal : "";
                s += "\"";
            }
            s += "}";
        }
        s += "}";
        return s;
    }

    /** Rewind over the `]}` trailer, append, re-write the trailer. */
    void
    appendRaw(const std::string &payload)
    {
        out.seekp(bodyEnd);
        out << payload;
        bodyEnd = out.tellp();
        out << "]}";
        out.flush();
    }

    std::ofstream out;
    std::ofstream::pos_type bodyEnd;
    bool anyWritten = false;
    std::mutex mtx;
};

namespace
{

/** Process-wide path -> sink registries (Runner threads share files). */
template <typename Sink>
std::shared_ptr<Sink>
sinkFor(const std::string &path)
{
    static std::mutex mtx;
    static std::map<std::string, std::shared_ptr<Sink>> registry;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = registry.find(path);
    if (it != registry.end())
        return it->second;
    auto sink = std::make_shared<Sink>(path);
    registry.emplace(path, sink);
    return sink;
}

} // namespace

Telemetry::Telemetry(const ObsConfig &config, const std::string &wl,
                     const std::string &sc)
    : cfg(config), workload(wl), scheme(sc),
      runId(nextRunId.fetch_add(1, std::memory_order_relaxed))
{
    if (!cfg.samplesPath.empty()) {
        sampler_ = std::make_unique<IntervalSampler>(cfg.sampleIntervalCycles);
        sampleSink_ = sinkFor<SampleSink>(cfg.samplesPath);
    }
    if (!cfg.tracePath.empty()) {
        tracer_ = std::make_unique<Tracer>(cfg.traceCapacity);
        traceSink_ = sinkFor<TraceSink>(cfg.tracePath);
        traceSink_->beginRun(runId, workload + "/" + scheme);
    }
}

Telemetry::~Telemetry()
{
    flush();
}

void
Telemetry::recordSample(Cycle now, const StatSet &cum,
                        std::uint64_t occCount, std::uint64_t occWeighted,
                        std::uint64_t walksQueued)
{
    if (sampler_ == nullptr)
        return;
    SampleRow row =
        sampler_->record(now, cum, occCount, occWeighted, walksQueued);
    if (sampleSink_ != nullptr)
        sampleSink_->write(runId, workload, scheme, row);
}

void
Telemetry::rebaselineOccupancy()
{
    if (sampler_ != nullptr)
        sampler_->rebaselineOccupancy();
}

void
Telemetry::flush()
{
    if (tracer_ == nullptr || traceSink_ == nullptr)
        return;
    std::uint64_t dropped = tracer_->dropped();
    std::vector<TraceEvent> events = tracer_->drain();
    if (dropped > 0) {
        TraceEvent note;
        note.name = "trace_dropped";
        note.ph = 'i';
        note.tid = 0;
        note.ts = tracer_->now();
        note.argKey = "dropped";
        note.argVal = dropped;
        events.push_back(note);
        warn("trace ring overflowed: %llu events dropped (%s/%s); raise "
             "FDIP_TRACE_CAP",
             static_cast<unsigned long long>(dropped), workload.c_str(),
             scheme.c_str());
    }
    traceSink_->append(runId, events);
}

} // namespace fdip
