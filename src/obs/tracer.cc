#include "obs/tracer.hh"

#include "common/logging.hh"

namespace fdip
{

Tracer::Tracer(std::size_t capacity)
{
    fatal_if(capacity == 0, "trace ring capacity must be > 0");
    ring_.resize(capacity);
}

void
Tracer::push(const TraceEvent &e)
{
    if (count_ == ring_.size())
        ++dropped_;
    else
        ++count_;
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
}

void
Tracer::complete(const char *name, std::uint32_t tid, Cycle start,
                 Cycle end, const char *argKey, std::uint64_t argVal,
                 const char *strKey, const char *strVal)
{
    TraceEvent e;
    e.name = name;
    e.ph = 'X';
    e.tid = tid;
    e.ts = start;
    e.dur = end >= start ? end - start : 0;
    e.argKey = argKey;
    e.argVal = argVal;
    e.strKey = strKey;
    e.strVal = strVal;
    push(e);
}

void
Tracer::instant(const char *name, std::uint32_t tid, const char *argKey,
                std::uint64_t argVal, const char *strKey,
                const char *strVal)
{
    TraceEvent e;
    e.name = name;
    e.ph = 'i';
    e.tid = tid;
    e.ts = now_;
    e.argKey = argKey;
    e.argVal = argVal;
    e.strKey = strKey;
    e.strVal = strVal;
    push(e);
}

std::vector<TraceEvent>
Tracer::drain()
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    // Oldest surviving event sits at head_ - count_ (mod capacity).
    std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    count_ = 0;
    head_ = 0;
    dropped_ = 0;
    return out;
}

} // namespace fdip
