#include "obs/attribution.hh"

#include "obs/tracer.hh"

namespace fdip
{

namespace
{

/** Log2 bucketing: 0 -> 0, otherwise 1 + floor(log2(d)), so bucket k
 *  (k >= 1) covers distances [2^(k-1), 2^k). */
std::uint64_t
log2Bucket(Cycle distance)
{
    std::uint64_t b = 0;
    while (distance != 0) {
        ++b;
        distance >>= 1;
    }
    return b;
}

} // namespace

// 22 buckets: same-cycle plus distances up to 2^21 cycles; anything
// beyond clamps into the overflow bucket.
PrefetchAttribution::PrefetchAttribution() : fillToUse(21)
{
    stTimely = stats.registerCounter("pfattr.timely");
    stLate = stats.registerCounter("pfattr.late");
    stEvictedUnused = stats.registerCounter("pfattr.evicted_unused");
    stPollution = stats.registerCounter("pfattr.pollution");
}

void
PrefetchAttribution::traceLifecycle(Addr block, const Live &lv, Cycle end,
                                    const char *outcome)
{
    if (tracer_ == nullptr)
        return;
    tracer_->complete("prefetch", kTidPrefetch, lv.issuedAt, end, "block",
                      block, "outcome", outcome);
}

void
PrefetchAttribution::onIssue(Addr block, Cycle now)
{
    Live lv;
    lv.issuedAt = now;
    // A re-issue of a still-tracked block (possible after its buffer
    // copy was displaced) restarts the lifecycle.
    live[block] = lv;
}

void
PrefetchAttribution::onFill(Addr block, Cycle now)
{
    auto it = live.find(block);
    if (it == live.end())
        return;
    it->second.filled = true;
    it->second.filledAt = now;
}

void
PrefetchAttribution::onConsume(Addr block, Cycle now)
{
    auto it = live.find(block);
    if (it == live.end())
        return;
    stTimely.inc();
    if (it->second.filled)
        fillToUse.sample(log2Bucket(now - it->second.filledAt));
    else
        fillToUse.sample(0);
    traceLifecycle(block, it->second, now, "timely");
    live.erase(it);
}

void
PrefetchAttribution::onDemandMerge(Addr block, Cycle now)
{
    // Count the merge even when the issue hook was not seen (keeps
    // pfattr.late identical to mem.inflight_prefetch_merges).
    stLate.inc();
    auto it = live.find(block);
    if (it != live.end()) {
        traceLifecycle(block, it->second, now, "late");
        live.erase(it);
    }
}

void
PrefetchAttribution::onEvictUnused(Addr block)
{
    auto it = live.find(block);
    stEvictedUnused.inc();
    if (it != live.end()) {
        Cycle end = tracer_ != nullptr ? tracer_->now() : it->second.filledAt;
        traceLifecycle(block, it->second, end, "evicted");
        live.erase(it);
    }
}

void
PrefetchAttribution::onL2Fill(Addr block, std::optional<Addr> victim,
                              bool isPrefetch)
{
    // The inserted block is present again: it can no longer pollute.
    victims.erase(block);
    if (isPrefetch && victim.has_value())
        victims[*victim] = block;
}

void
PrefetchAttribution::onL2DemandMiss(Addr block)
{
    auto it = victims.find(block);
    if (it == victims.end())
        return;
    stPollution.inc();
    if (tracer_ != nullptr)
        tracer_->instant("pf_pollution", kTidMem, "victim", block);
    victims.erase(it);
}

} // namespace fdip
