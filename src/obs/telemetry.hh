/**
 * @file telemetry.hh
 * Telemetry front door: per-simulator ownership of the IntervalSampler
 * and Tracer pillars plus the process-wide file sinks they write
 * through. Everything here is passive — it reads simulator state and
 * never feeds anything back, so enabling it cannot change simulated
 * results (enforced by the parity tests).
 *
 * Knobs (environment wins over SimConfig::obs):
 *   FDIP_SAMPLES=path          enable interval sampling (JSONL, or CSV
 *                              when the path ends in ".csv")
 *   FDIP_SAMPLE_INTERVAL=N     sample interval in cycles
 *   FDIP_TRACE=path            enable Chrome trace_event output
 *   FDIP_TRACE_CAP=N           trace ring-buffer capacity (events)
 *
 * Concurrent Runner threads may share one output file: sinks are
 * keyed by path in a process-wide registry and serialize writes; each
 * run gets a distinct trace pid / sample "run" id.
 */

#ifndef FDIP_OBS_TELEMETRY_HH
#define FDIP_OBS_TELEMETRY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"

namespace fdip
{

class SampleSink;
class TraceSink;

/** Observability knobs. Carried on SimConfig but deliberately EXCLUDED
 *  from SimConfig::fingerprint(): telemetry is passive, so it must not
 *  invalidate result caches or differentiate grid points. */
struct ObsConfig
{
    std::string samplesPath; ///< empty = sampling off
    std::string tracePath;   ///< empty = tracing off
    Cycle sampleIntervalCycles = 10000;
    std::size_t traceCapacity = 65536;

    /** Overlay FDIP_SAMPLES / FDIP_TRACE / FDIP_SAMPLE_INTERVAL /
     *  FDIP_TRACE_CAP on top of the programmatic settings. */
    void applyEnv();

    bool enabled() const { return !samplesPath.empty() || !tracePath.empty(); }
};

/**
 * One simulation run's telemetry: owns the sampler and/or tracer the
 * config asks for and routes their output to the shared sinks.
 */
class Telemetry
{
  public:
    Telemetry(const ObsConfig &cfg, const std::string &workload,
              const std::string &scheme);
    ~Telemetry();

    /** Non-null when sampling is on. */
    IntervalSampler *sampler() { return sampler_.get(); }

    /** Non-null when tracing is on. */
    Tracer *tracer() { return tracer_.get(); }

    /** Take the sample due at @p now and write it out. */
    void recordSample(Cycle now, const StatSet &cum, std::uint64_t occCount,
                      std::uint64_t occWeighted, std::uint64_t walksQueued);

    /** FTQ occupancy histogram was reset (warmup boundary). */
    void rebaselineOccupancy();

    /** Drain the trace ring to the file. Idempotent; also runs from
     *  the destructor. */
    void flush();

  private:
    ObsConfig cfg;
    std::string workload;
    std::string scheme;
    std::uint64_t runId;

    std::unique_ptr<IntervalSampler> sampler_;
    std::unique_ptr<Tracer> tracer_;
    std::shared_ptr<SampleSink> sampleSink_;
    std::shared_ptr<TraceSink> traceSink_;
};

} // namespace fdip

#endif // FDIP_OBS_TELEMETRY_HH
