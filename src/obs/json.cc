#include "obs/json.hh"

#include <cctype>
#include <cstdio>

namespace fdip
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

namespace
{

/** Cursor over the text being validated. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
        return false;
    }

    bool atEnd() const { return pos >= text.size(); }

    char
    peek() const
    {
        return atEnd() ? '\0' : text[pos];
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = text[pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos;
            else
                break;
        }
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (atEnd() || text[pos] != *p)
                return fail(std::string("expected '") + word + "'");
            ++pos;
        }
        return true;
    }

    bool
    string()
    {
        if (peek() != '"')
            return fail("expected string");
        ++pos;
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            unsigned char c = static_cast<unsigned char>(text[pos]);
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++pos;
                if (atEnd())
                    return fail("truncated escape");
                char e = text[pos];
                if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                    e == 'f' || e == 'n' || e == 'r' || e == 't') {
                    ++pos;
                } else if (e == 'u') {
                    ++pos;
                    for (int i = 0; i < 4; ++i, ++pos) {
                        if (atEnd() || !std::isxdigit(static_cast<unsigned char>(
                                           text[pos])))
                            return fail("bad \\u escape");
                    }
                } else {
                    return fail("bad escape character");
                }
            } else {
                ++pos;
            }
        }
    }

    bool
    number()
    {
        if (peek() == '-')
            ++pos;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected digit");
        if (peek() == '0') {
            ++pos;
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == '.') {
            ++pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("expected fraction digit");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("expected exponent digit");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return true;
    }

    bool
    value()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':'");
            ++pos;
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

bool
jsonValidate(const std::string &text, std::string *error)
{
    Parser p{text};
    bool ok = p.value();
    if (ok) {
        p.skipWs();
        if (!p.atEnd()) {
            ok = false;
            p.fail("trailing garbage");
        }
    }
    if (!ok && error != nullptr)
        *error = p.error;
    return ok;
}

} // namespace fdip
