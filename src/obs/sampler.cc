#include "obs/sampler.hh"

#include "common/logging.hh"

namespace fdip
{

IntervalSampler::IntervalSampler(Cycle intervalCycles)
    : interval_(intervalCycles), next_(intervalCycles)
{
    fatal_if(intervalCycles == 0, "sample interval must be > 0 cycles");
}

SampleRow
IntervalSampler::record(Cycle now, const StatSet &cum,
                        std::uint64_t occCount, std::uint64_t occWeighted,
                        std::uint64_t walksQueued)
{
    StatSet delta = StatSet::subtract(cum, prev_);
    Cycle cycles = now - prevCycle_;

    SampleRow row;
    row.cycle = now;
    row.intervalCycles = cycles;
    row.insts = static_cast<std::uint64_t>(delta.value("sim.committed"));
    row.ipc = cycles == 0 ? 0.0
        : static_cast<double>(row.insts) / static_cast<double>(cycles);

    double kinsts = static_cast<double>(row.insts) / 1000.0;
    double true_misses = delta.value("mem.demand_misses") -
        delta.value("mem.inflight_merges");
    row.mpki = kinsts > 0.0 ? true_misses / kinsts : 0.0;

    double issued = delta.value("mem.prefetches_issued");
    double useful = delta.value("pfbuf.consumed") + delta.value("sb.hits") +
        delta.value("mem.inflight_prefetch_merges");
    row.pfAccuracy = issued > 0.0 ? useful / issued : 0.0;
    row.prefetchesIssued = static_cast<std::uint64_t>(issued);

    std::uint64_t occ_n = occCount - prevOccCount_;
    std::uint64_t occ_w = occWeighted - prevOccWeighted_;
    row.ftqOccMean = occ_n == 0 ? 0.0
        : static_cast<double>(occ_w) / static_cast<double>(occ_n);

    row.walksQueued = walksQueued;

    prev_ = cum;
    prevCycle_ = now;
    prevOccCount_ = occCount;
    prevOccWeighted_ = occWeighted;
    while (next_ <= now)
        next_ += interval_;
    return row;
}

void
IntervalSampler::rebaselineOccupancy()
{
    prevOccCount_ = 0;
    prevOccWeighted_ = 0;
}

} // namespace fdip
