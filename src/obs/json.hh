/**
 * @file json.hh
 * Minimal JSON helpers for the observability subsystem: string
 * escaping for emitters and a strict validator used by tests and CI to
 * check that emitted trace/sample files actually parse. No DOM — the
 * simulator only ever writes JSON, never consumes it.
 */

#ifndef FDIP_OBS_JSON_HH
#define FDIP_OBS_JSON_HH

#include <string>

namespace fdip
{

/** Escape @p s for embedding inside a double-quoted JSON string. */
std::string jsonEscape(const std::string &s);

/**
 * Strict recursive-descent check that @p text is one complete JSON
 * value (RFC 8259). Returns false and fills @p error (if non-null)
 * with a position-annotated message on the first violation.
 */
bool jsonValidate(const std::string &text, std::string *error = nullptr);

} // namespace fdip

#endif // FDIP_OBS_JSON_HH
