/**
 * @file page_table.hh
 * Virtual->physical page mapping for the simulated code image. The
 * mapping is built once from a laid-out program: identity by default
 * (VM timing without relocation) or a seeded permutation of the code's
 * own page frames, which makes TLB behaviour and physical contiguity
 * non-trivial while keeping the map bijective.
 */

#ifndef FDIP_VM_PAGE_TABLE_HH
#define FDIP_VM_PAGE_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace fdip
{

class Program;

/** How virtual code pages map onto physical page frames. */
enum class PageMapKind : std::uint8_t
{
    Identity,  ///< paddr == vaddr for every page
    Scrambled, ///< seeded permutation of the code's page frames
};

const char *pageMapKindName(PageMapKind kind);

class PageTable
{
  public:
    PageTable(Addr code_base, Addr code_end, unsigned page_bytes,
              PageMapKind kind, std::uint64_t seed);

    /** Convenience: map the pages spanned by a laid-out program. */
    PageTable(const Program &prog, unsigned page_bytes, PageMapKind kind,
              std::uint64_t seed);

    Addr vpn(Addr vaddr) const { return vaddr >> shift; }
    Addr pageOffset(Addr vaddr) const { return vaddr & (bytes - 1); }

    /**
     * Translate any virtual address. Pages outside the mapped code
     * range (wrong-path walks can run off the image) are
     * identity-mapped; the scrambled permutation only touches frames
     * inside the image, so the two regions never collide.
     */
    Addr translate(Addr vaddr) const;

    unsigned pageBytes() const { return bytes; }
    std::size_t numPages() const { return frames.size(); }

  private:
    unsigned bytes;
    unsigned shift;
    Addr base_; ///< page-aligned start of the mapped range
    std::vector<Addr> frames; ///< physical frame number per mapped vpn
};

} // namespace fdip

#endif // FDIP_VM_PAGE_TABLE_HH
