#include "vm/itlb.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

Itlb::Itlb(const Config &config)
    : cfg(config)
{
    fatal_if(cfg.entries == 0, "ITLB needs at least one entry");
    fatal_if(cfg.assoc == 0, "ITLB associativity must be nonzero");
    fatal_if(cfg.entries % cfg.assoc != 0,
             "ITLB entries must divide evenly into ways");
    sets = cfg.entries / cfg.assoc;
    fatal_if(!isPowerOf2(sets),
             "ITLB set count must be a power of two");
    entries_.resize(cfg.entries);
}

std::size_t
Itlb::setBase(Addr vpn) const
{
    return static_cast<std::size_t>(vpn & (sets - 1)) * cfg.assoc;
}

Itlb::Entry *
Itlb::find(Addr vpn)
{
    std::size_t base = setBase(vpn);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

const Itlb::Entry *
Itlb::find(Addr vpn) const
{
    return const_cast<Itlb *>(this)->find(vpn);
}

bool
Itlb::lookup(Addr vpn) const
{
    return find(vpn) != nullptr;
}

bool
Itlb::access(Addr vpn)
{
    stAccesses.inc();
    Entry *e = find(vpn);
    if (e == nullptr) {
        stMisses.inc();
        return false;
    }
    e->lruStamp = ++lruClock;
    stHits.inc();
    return true;
}

void
Itlb::insert(Addr vpn)
{
    if (Entry *e = find(vpn)) {
        // Refreshed by a racing walk; just bump recency.
        e->lruStamp = ++lruClock;
        return;
    }
    std::size_t base = setBase(vpn);
    Entry *victim = &entries_[base];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &e = entries_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    if (victim->valid)
        stEvictions.inc();
    victim->valid = true;
    victim->vpn = vpn;
    victim->lruStamp = ++lruClock;
    stFills.inc();
}

bool
Itlb::invalidate(Addr vpn)
{
    Entry *e = find(vpn);
    if (e == nullptr)
        return false;
    e->valid = false;
    return true;
}

unsigned
Itlb::validEntries() const
{
    unsigned n = 0;
    for (const Entry &e : entries_) {
        if (e.valid)
            ++n;
    }
    return n;
}

} // namespace fdip
