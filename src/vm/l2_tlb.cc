#include "vm/l2_tlb.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

L2Tlb::L2Tlb(const Config &config)
    : cfg(config)
{
    fatal_if(cfg.entries == 0, "L2 TLB needs at least one entry");
    fatal_if(cfg.assoc == 0, "L2 TLB associativity must be nonzero");
    fatal_if(cfg.entries % cfg.assoc != 0,
             "L2 TLB entries must divide evenly into ways");
    sets = cfg.entries / cfg.assoc;
    fatal_if(!isPowerOf2(sets),
             "L2 TLB set count must be a power of two");
    fatal_if(cfg.hitLatency == 0, "L2 TLB hit latency must be nonzero");
    entries_.resize(cfg.entries);
}

std::size_t
L2Tlb::setBase(Addr vpn) const
{
    return static_cast<std::size_t>(vpn & (sets - 1)) * cfg.assoc;
}

L2Tlb::Entry *
L2Tlb::find(Addr vpn)
{
    std::size_t base = setBase(vpn);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

const L2Tlb::Entry *
L2Tlb::find(Addr vpn) const
{
    return const_cast<L2Tlb *>(this)->find(vpn);
}

bool
L2Tlb::lookup(Addr vpn) const
{
    return find(vpn) != nullptr;
}

bool
L2Tlb::access(Addr vpn)
{
    stAccesses.inc();
    Entry *e = find(vpn);
    if (e == nullptr) {
        stMisses.inc();
        return false;
    }
    e->lruStamp = ++lruClock;
    stHits.inc();
    return true;
}

void
L2Tlb::insert(Addr vpn)
{
    if (Entry *e = find(vpn)) {
        // Refreshed by a racing walk; just bump recency.
        e->lruStamp = ++lruClock;
        return;
    }
    std::size_t base = setBase(vpn);
    Entry *victim = &entries_[base];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &e = entries_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    if (victim->valid)
        stEvictions.inc();
    victim->valid = true;
    victim->vpn = vpn;
    victim->lruStamp = ++lruClock;
    stFills.inc();
}

bool
L2Tlb::invalidate(Addr vpn)
{
    Entry *e = find(vpn);
    if (e == nullptr)
        return false;
    e->valid = false;
    return true;
}

unsigned
L2Tlb::validEntries() const
{
    unsigned n = 0;
    for (const Entry &e : entries_) {
        if (e.valid)
            ++n;
    }
    return n;
}

} // namespace fdip
