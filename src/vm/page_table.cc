#include "vm/page_table.hh"

#include <utility>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "trace/program.hh"

namespace fdip
{

const char *
pageMapKindName(PageMapKind kind)
{
    switch (kind) {
      case PageMapKind::Identity: return "identity";
      case PageMapKind::Scrambled: return "scrambled";
    }
    return "?";
}

PageTable::PageTable(Addr code_base, Addr code_end, unsigned page_bytes,
                     PageMapKind kind, std::uint64_t seed)
    : bytes(page_bytes)
{
    fatal_if(!isPowerOf2(page_bytes), "page size must be a power of two");
    fatal_if(page_bytes < instBytes, "pages smaller than an instruction");
    fatal_if(code_end <= code_base, "PageTable over an empty range");
    shift = floorLog2(page_bytes);
    base_ = alignDown(code_base, page_bytes);
    Addr top = alignUp(code_end, page_bytes);
    std::size_t n = static_cast<std::size_t>((top - base_) >> shift);

    frames.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        frames[i] = (base_ >> shift) + i;
    if (kind == PageMapKind::Scrambled) {
        // Seeded Fisher-Yates over the code's own frame pool keeps the
        // map a bijection and reproducible across runs.
        Rng rng(seed);
        for (std::size_t i = n; i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(rng.below(i));
            std::swap(frames[i - 1], frames[j]);
        }
    }
}

PageTable::PageTable(const Program &prog, unsigned page_bytes,
                     PageMapKind kind, std::uint64_t seed)
    : PageTable(prog.base, prog.codeEnd(), page_bytes, kind, seed)
{}

Addr
PageTable::translate(Addr vaddr) const
{
    Addr v = vpn(vaddr);
    Addr first = base_ >> shift;
    if (v < first || v >= first + frames.size())
        return vaddr;
    return (frames[v - first] << shift) | pageOffset(vaddr);
}

} // namespace fdip
