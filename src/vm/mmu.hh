/**
 * @file mmu.hh
 * The instruction-side virtual-memory subsystem: a two-level TLB
 * hierarchy (ITLB backed by an optional L2 TLB) over the program's
 * page table, with page-table walks served by a bounded pool of
 * walkers and per-page merging of concurrent requests.
 *
 * An ITLB miss splits three ways:
 *  - L2-TLB hit: the translation refills the ITLB after a short
 *    fixed latency, without occupying a walker;
 *  - full walk, walker free: a page-table walk starts immediately;
 *  - full walk, walkers saturated: the walk queues. Demand walks
 *    enter the queue ahead of prefetch-triggered walks, so prefetch
 *    translation traffic can never delay the fetch engine's walks.
 *
 * The fetch engine translates demand fetches here (stalling for the
 * walk on a miss); prefetchers probe translations through one of the
 * three policies from the literature:
 *
 *  - Drop: a candidate whose page needs a full walk is discarded
 *          (an L2-TLB hit is not a walk, so it proceeds after the
 *          L2 latency).
 *  - Wait: the candidate waits for a page walk, then issues; the walk
 *          fills neither TLB level (no speculative TLB pollution).
 *  - Fill: like Wait, but the completed walk also fills the ITLB and
 *          L2 TLB, pre-warming the translation for the later demand.
 *
 * A fourth mechanism decouples translation lookahead from the block
 * prefetcher entirely: the TLB prefetcher (vm/tlb_prefetcher.hh)
 * walks the FTQ and warms translations through
 * tlbPrefetchTranslate() before any demand or prefetch probe arrives.
 */

#ifndef FDIP_VM_MMU_HH
#define FDIP_VM_MMU_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "vm/itlb.hh"
#include "vm/l2_tlb.hh"
#include "vm/page_table.hh"

namespace fdip
{

class Program;
class Tracer;

/** What a prefetcher does with a candidate whose page misses the ITLB. */
enum class TlbPrefetchPolicy : std::uint8_t
{
    Drop,
    Wait,
    Fill,
};

const char *tlbPolicyName(TlbPrefetchPolicy policy);

struct VmConfig
{
    bool enable = false;
    unsigned pageBytes = 4096;
    unsigned itlbEntries = 64;
    unsigned itlbAssoc = 4;
    /** Fixed page-table walk latency in cycles. */
    Cycle walkLatency = 30;
    TlbPrefetchPolicy prefetchPolicy = TlbPrefetchPolicy::Drop;
    PageMapKind mapping = PageMapKind::Identity;
    std::uint64_t mapSeed = 0xf0d1;

    /** Second-level TLB size; 0 disables it (single-level hierarchy,
     *  every ITLB miss is a full walk — the pre-L2 model). */
    unsigned l2TlbEntries = 0;
    unsigned l2TlbAssoc = 8;
    /** ITLB-refill latency on an L2-TLB hit. */
    Cycle l2TlbLatency = 8;

    /** Page-table walkers; 0 = unlimited walk concurrency (the
     *  pre-bounded model). With N walkers, excess walks queue, demand
     *  walks ahead of prefetch walks. */
    unsigned numWalkers = 0;

    /** Decoupled TLB prefetcher: walk the FTQ ahead of the block
     *  prefetcher and warm ITLB/L2-TLB translations. */
    bool tlbPrefetch = false;
    /** Translation requests the TLB prefetcher may start per cycle. */
    unsigned tlbPrefetchWidth = 2;
    /** Recently-probed-page filter (suppresses re-probes); must
     *  comfortably exceed the FTQ's distinct-page footprint or the
     *  prefetcher re-probes in a loop. */
    unsigned tlbPrefetchFilterEntries = 64;
};

/** Outcome of one demand translation. */
struct TlbAccess
{
    bool hit = true;
    Addr paddr = invalidAddr;
    /** When the translation is usable (now on a hit, walk end on miss). */
    Cycle readyAt = 0;
};

/** Outcome of one prefetch translation probe. */
struct PfTranslation
{
    enum class Status
    {
        Ready,   ///< translation available this cycle
        Walking, ///< usable once the backing walk/refill completes
        Dropped, ///< candidate must be discarded (Drop policy)
    };

    Status status = Status::Ready;
    Addr paddr = invalidAddr;
    /** Completion when known; kNever while queued for a walker. */
    Cycle readyAt = 0;
    /** Walk reference for live Mmu::walkPending() polling. */
    Addr vpn = invalidAddr;
    std::uint64_t walkId = 0; ///< 0: no in-flight walk backs this
};

/**
 * Cached issue-time translation of one prefetch candidate, resolved
 * at most once via Prefetcher::resolveTranslation(). While walkId is
 * nonzero the candidate waits on the referenced in-flight walk (whose
 * completion may slide under bounded walker bandwidth, so readiness
 * is polled from the Mmu rather than read from a cached cycle).
 */
struct PfTranslationState
{
    bool translated = false;
    Addr paddr = invalidAddr;
    /** Completion estimate at probe time; kNever while queued. */
    Cycle readyAt = 0;
    Addr vpn = invalidAddr;
    std::uint64_t walkId = 0; ///< 0: not waiting on any walk
};

class Mmu
{
  public:
    Mmu(const VmConfig &config, Addr code_base, Addr code_end);
    Mmu(const VmConfig &config, const Program &prog);

    bool enabled() const { return cfg.enable; }

    /** Complete due walks/refills (installing TLB fills) and start
     *  queued walks on freed walkers; once a cycle. */
    void tick(Cycle now);

    /**
     * Quiescence protocol: the earliest in-flight walk or L2-refill
     * completion (the MMU's only self-driven state changes); kNever
     * when nothing is in flight. Queued walks need no event of their
     * own — they start on a walker completion, which is already
     * reported. Never returns a cycle <= @p now.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Translate a demand fetch. On an ITLB miss the L2 TLB is probed;
     * a hit schedules an ITLB refill, a miss starts (or joins) a page
     * walk — queueing ahead of any prefetch walks when the walkers
     * are saturated. @c readyAt reports the completion (exact even
     * for a queued walk: nothing can overtake a demand); the fill
     * always lands in the ITLB, so a retry at @c readyAt hits.
     */
    TlbAccess demandTranslate(Addr vaddr, Cycle now);

    /**
     * Translation probe for a prefetch candidate, applying the
     * configured policy. Side-effect-free on the TLB ordering; Wait
     * and Fill start (or join) a page walk on a full miss. A queued
     * walk reports readyAt = kNever — poll walkPending() instead.
     */
    PfTranslation prefetchTranslate(Addr vaddr, Cycle now);

    /**
     * Translation warm-up request from the TLB prefetcher: starts (or
     * joins) a prefetch-priority walk or L2 refill that fills both
     * TLB levels. Ready when the ITLB already holds the page.
     */
    PfTranslation tlbPrefetchTranslate(Addr vaddr, Cycle now);

    /** Untimed page-table peek (simulator-internal filter probes). */
    Addr translateFunctional(Addr vaddr) const;

    /** Pure ITLB probe: would @p vaddr translate without a walk? */
    bool tlbHolds(Addr vaddr) const;

    /** Is the walk identified by (vpn, walk_id) still in flight
     *  (queued or active)? False once completed (or never started). */
    bool walkPending(Addr vpn, std::uint64_t walk_id) const;

    /**
     * Completion cycle of the walk identified by (vpn, walk_id):
     * the exact cycle while active, kNever while still queued for a
     * walker, 0 when already completed.
     */
    Cycle walkReadyCycle(Addr vpn, std::uint64_t walk_id) const;

    /** In-flight translations: active + queued walks + L2 refills. */
    std::size_t walksInFlight() const { return walks.size(); }
    /** Walks waiting for a free walker. */
    std::size_t walksQueued() const { return walkQueue.size(); }

    Itlb &itlb() { return itlb_; }
    const Itlb &itlb() const { return itlb_; }
    /** nullptr when the L2 TLB is disabled (l2TlbEntries == 0). */
    L2Tlb *l2Tlb() { return l2_.get(); }
    const L2Tlb *l2Tlb() const { return l2_.get(); }
    const PageTable &pageTable() const { return pt; }
    const VmConfig &config() const { return cfg; }

    /** Aggregate MMU + ITLB + L2-TLB statistics into @p out. */
    void collectStats(StatSet &out) const;

    /** Emit walk/refill lifetime spans to @p t (null disables). */
    void setTracer(Tracer *t) { tracer = t; }

    StatSet stats;

  private:
    StatSet::Counter stWalkMerges = stats.registerCounter("mmu.walk_merges");
    StatSet::Counter stWalks = stats.registerCounter("mmu.walks");
    StatSet::Counter stDemandWalks =
        stats.registerCounter("mmu.demand_walks");
    StatSet::Counter stPfTlbHits = stats.registerCounter("mmu.pf_tlb_hits");
    StatSet::Counter stPfTlbMisses =
        stats.registerCounter("mmu.pf_tlb_misses");
    StatSet::Counter stPfDropped = stats.registerCounter("mmu.pf_dropped");
    StatSet::Counter stPfWalks = stats.registerCounter("mmu.pf_walks");
    StatSet::Counter stPfFills = stats.registerCounter("mmu.pf_fills");
    StatSet::Counter stL2HitFills =
        stats.registerCounter("mmu.l2tlb_hit_fills");
    StatSet::Counter stPfL2Hits =
        stats.registerCounter("mmu.pf_l2tlb_hits");
    StatSet::Counter stWalksQueued =
        stats.registerCounter("mmu.walks_queued");
    StatSet::Counter stWalkQueueCycles =
        stats.registerCounter("mmu.walk_queue_cycles");
    StatSet::Counter stDemandQueueCycles =
        stats.registerCounter("mmu.demand_queue_cycles");
    StatSet::Counter stWalkUpgrades =
        stats.registerCounter("mmu.walk_upgrades");
    StatSet::Counter stTlbPfWalks =
        stats.registerCounter("mmu.tlbpf_walks");

    /**
     * One in-flight translation: a page-table walk (active on a
     * walker, or queued for one) or an L2-TLB-hit ITLB refill (fixed
     * short latency, no walker).
     */
    struct Walk
    {
        std::uint64_t id = 0;
        /** Completion cycle; kNever while queued for a walker. */
        Cycle readyAt = kNever;
        Cycle queuedAt = 0;
        bool started = false;
        /** False: L2-TLB-hit refill (never queues, needs no walker). */
        bool isWalk = true;
        /** Demand-priority (queues ahead of prefetch walks). */
        bool demand = false;
        bool fillItlb = false;
        bool fillL2 = false;
    };

    /**
     * Start, queue, or join the walk for @p vpn. @p created reports
     * whether a new walk was launched (false when the request merged
     * into an in-flight one; a demand joining a queued prefetch walk
     * upgrades its queue priority and fills).
     */
    Walk &requestWalk(Addr vpn, Cycle now, bool is_demand, bool fill_itlb,
                      bool fill_l2, bool &created);

    /** Create (or join) an L2-TLB-hit ITLB refill for @p vpn. */
    Walk &requestL2Refill(Addr vpn, Cycle now, bool fill_itlb,
                          bool &created);

    /**
     * Deterministic start cycle of a demand walk enqueued at @p now
     * behind @p demands_ahead queued demand walks (bounded mode, all
     * walkers busy): simulate the walker pool serving the queued
     * demands first. Exact because nothing ever overtakes a demand.
     */
    Cycle boundedWalkStart(Cycle now, std::size_t demands_ahead) const;

    /** Queue insertion point for a demand walk: after the queued
     *  demands, before every queued prefetch walk. */
    std::size_t demandQueuePosition() const;

    void applyFills(const Walk &walk, Addr vpn);

    VmConfig cfg;
    PageTable pt;
    Itlb itlb_;
    std::unique_ptr<L2Tlb> l2_;
    std::map<Addr, Walk> walks;
    /** VPNs of un-started walks in service order (demands first). */
    std::deque<Addr> walkQueue;
    /** Per-walker busy-until cycle; empty in unlimited mode. */
    std::vector<Cycle> walkerFreeAt;
    std::uint64_t nextWalkId = 1;
    Tracer *tracer = nullptr;
};

} // namespace fdip

#endif // FDIP_VM_MMU_HH
