/**
 * @file mmu.hh
 * The instruction-side virtual-memory subsystem: an ITLB backed by the
 * program's page table, plus a fixed-latency page-table walker with
 * per-page merging of concurrent walks. The fetch engine translates
 * demand fetches here (stalling for the walk on an ITLB miss);
 * prefetchers probe translations through one of the three policies
 * from the literature:
 *
 *  - Drop: a candidate whose page misses the ITLB is discarded.
 *  - Wait: the candidate waits for a page walk, then issues; the walk
 *          does NOT fill the ITLB (no speculative TLB pollution).
 *  - Fill: like Wait, but the completed walk also fills the ITLB,
 *          pre-warming the translation for the later demand fetch.
 */

#ifndef FDIP_VM_MMU_HH
#define FDIP_VM_MMU_HH

#include <map>

#include "common/stats.hh"
#include "common/types.hh"
#include "vm/itlb.hh"
#include "vm/page_table.hh"

namespace fdip
{

class Program;

/** What a prefetcher does with a candidate whose page misses the ITLB. */
enum class TlbPrefetchPolicy : std::uint8_t
{
    Drop,
    Wait,
    Fill,
};

const char *tlbPolicyName(TlbPrefetchPolicy policy);

struct VmConfig
{
    bool enable = false;
    unsigned pageBytes = 4096;
    unsigned itlbEntries = 64;
    unsigned itlbAssoc = 4;
    /** Fixed page-table walk latency in cycles. */
    Cycle walkLatency = 30;
    TlbPrefetchPolicy prefetchPolicy = TlbPrefetchPolicy::Drop;
    PageMapKind mapping = PageMapKind::Identity;
    std::uint64_t mapSeed = 0xf0d1;
};

/** Outcome of one demand translation. */
struct TlbAccess
{
    bool hit = true;
    Addr paddr = invalidAddr;
    /** When the translation is usable (now on a hit, walk end on miss). */
    Cycle readyAt = 0;
};

/** Outcome of one prefetch translation probe. */
struct PfTranslation
{
    enum class Status
    {
        Ready,   ///< translation available this cycle
        Walking, ///< usable once @c readyAt arrives (Wait/Fill policies)
        Dropped, ///< candidate must be discarded (Drop policy)
    };

    Status status = Status::Ready;
    Addr paddr = invalidAddr;
    Cycle readyAt = 0;
};

/**
 * Cached issue-time translation of one prefetch candidate, resolved
 * at most once via Prefetcher::resolveTranslation().
 */
struct PfTranslationState
{
    bool translated = false;
    Addr paddr = invalidAddr;
    /** Earliest issue time: page-walk completion under Wait/Fill. */
    Cycle readyAt = 0;
};

class Mmu
{
  public:
    Mmu(const VmConfig &config, Addr code_base, Addr code_end);
    Mmu(const VmConfig &config, const Program &prog);

    bool enabled() const { return cfg.enable; }

    /** Complete due page walks (installing ITLB fills); once a cycle. */
    void tick(Cycle now);

    /**
     * Quiescence protocol: the earliest in-flight page-walk completion
     * (walks are the MMU's only self-driven state change); kNever when
     * no walk is in flight. Never returns a cycle <= @p now.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Translate a demand fetch. On an ITLB miss a walk is started (or
     * joined) and @c readyAt reports its completion; the walk always
     * fills the ITLB, so a retry at @c readyAt hits.
     */
    TlbAccess demandTranslate(Addr vaddr, Cycle now);

    /**
     * Translation probe for a prefetch candidate, applying the
     * configured policy. Side-effect-free on the ITLB ordering; Wait
     * and Fill start (or join) a page walk on a miss.
     */
    PfTranslation prefetchTranslate(Addr vaddr, Cycle now);

    /** Untimed page-table peek (simulator-internal filter probes). */
    Addr translateFunctional(Addr vaddr) const;

    /** Pure ITLB probe: would @p vaddr translate without a walk? */
    bool tlbHolds(Addr vaddr) const;

    std::size_t walksInFlight() const { return walks.size(); }

    Itlb &itlb() { return itlb_; }
    const Itlb &itlb() const { return itlb_; }
    const PageTable &pageTable() const { return pt; }
    const VmConfig &config() const { return cfg; }

    /** Aggregate MMU + ITLB statistics into @p out. */
    void collectStats(StatSet &out) const;

    StatSet stats;

  private:
    StatSet::Counter stWalkMerges = stats.registerCounter("mmu.walk_merges");
    StatSet::Counter stWalks = stats.registerCounter("mmu.walks");
    StatSet::Counter stDemandWalks =
        stats.registerCounter("mmu.demand_walks");
    StatSet::Counter stPfTlbHits = stats.registerCounter("mmu.pf_tlb_hits");
    StatSet::Counter stPfTlbMisses =
        stats.registerCounter("mmu.pf_tlb_misses");
    StatSet::Counter stPfDropped = stats.registerCounter("mmu.pf_dropped");
    StatSet::Counter stPfWalks = stats.registerCounter("mmu.pf_walks");
    StatSet::Counter stPfFills = stats.registerCounter("mmu.pf_fills");

    struct Walk
    {
        Cycle readyAt = 0;
        bool fillTlb = false;
    };

    /**
     * Start or join the walk for @p vpn; returns its completion time.
     * @p created reports whether a new walk was launched (false when
     * the request merged into an in-flight one).
     */
    Cycle startWalk(Addr vpn, Cycle now, bool fill_tlb, bool &created);

    VmConfig cfg;
    PageTable pt;
    Itlb itlb_;
    std::map<Addr, Walk> walks;
};

} // namespace fdip

#endif // FDIP_VM_MMU_HH
