#include "vm/mmu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/tracer.hh"
#include "trace/program.hh"

namespace fdip
{

const char *
tlbPolicyName(TlbPrefetchPolicy policy)
{
    switch (policy) {
      case TlbPrefetchPolicy::Drop: return "drop";
      case TlbPrefetchPolicy::Wait: return "wait";
      case TlbPrefetchPolicy::Fill: return "fill";
    }
    return "?";
}

Mmu::Mmu(const VmConfig &config, Addr code_base, Addr code_end)
    : cfg(config),
      pt(code_base, code_end, cfg.pageBytes, cfg.mapping, cfg.mapSeed),
      itlb_({cfg.itlbEntries, cfg.itlbAssoc})
{
    fatal_if(cfg.enable && cfg.walkLatency == 0,
             "page-walk latency must be nonzero");
    if (cfg.l2TlbEntries > 0) {
        l2_ = std::make_unique<L2Tlb>(L2Tlb::Config{
            cfg.l2TlbEntries, cfg.l2TlbAssoc, cfg.l2TlbLatency});
    }
    if (cfg.numWalkers > 0)
        walkerFreeAt.assign(cfg.numWalkers, 0);
}

Mmu::Mmu(const VmConfig &config, const Program &prog)
    : Mmu(config, prog.base, prog.codeEnd())
{}

void
Mmu::applyFills(const Walk &walk, Addr vpn)
{
    if (walk.fillItlb)
        itlb_.insert(vpn);
    if (walk.fillL2 && l2_ != nullptr)
        l2_->insert(vpn);
}

void
Mmu::tick(Cycle now)
{
    if (!cfg.enable || walks.empty())
        return;
    // Complete due walks and refills first: the walkers they held are
    // free for queued walks in the same cycle.
    for (auto it = walks.begin(); it != walks.end();) {
        if (it->second.started && it->second.readyAt <= now) {
            if (tracer != nullptr) {
                const Walk &w = it->second;
                // Queue wait = time between the request and the walk
                // actually occupying a walker (0 for L2 refills).
                Cycle wait = w.isWalk
                    ? (w.readyAt - cfg.walkLatency) - w.queuedAt : 0;
                tracer->complete(w.isWalk ? "walk" : "l2_refill", kTidVm,
                                 w.queuedAt, now, "queue_wait", wait,
                                 "kind", w.demand ? "demand" : "prefetch");
            }
            applyFills(it->second, it->first);
            it = walks.erase(it);
        } else {
            ++it;
        }
    }
    // Start queued walks on freed walkers, demands first (the queue
    // is kept in service order).
    while (!walkQueue.empty()) {
        auto free_it = std::find_if(
            walkerFreeAt.begin(), walkerFreeAt.end(),
            [now](Cycle c) { return c <= now; });
        if (free_it == walkerFreeAt.end())
            break;
        Addr vpn = walkQueue.front();
        walkQueue.pop_front();
        Walk &w = walks.at(vpn);
        Cycle ready = now + cfg.walkLatency;
        panic_if(w.demand && w.readyAt != ready,
                 "queued demand walk started at the wrong cycle");
        w.started = true;
        w.readyAt = ready;
        *free_it = ready;
        stWalkQueueCycles.inc(now - w.queuedAt);
        if (w.demand)
            stDemandQueueCycles.inc(now - w.queuedAt);
    }
}

Cycle
Mmu::nextEventCycle(Cycle now) const
{
    // Queued walks start on a walker completion, which is itself a
    // started walk's event, so only started entries are scanned.
    Cycle next = kNever;
    for (const auto &[vpn, walk] : walks) {
        if (walk.started && walk.readyAt < next)
            next = walk.readyAt;
    }
    return next <= now ? now + 1 : next;
}

std::size_t
Mmu::demandQueuePosition() const
{
    std::size_t pos = 0;
    while (pos < walkQueue.size() && walks.at(walkQueue[pos]).demand)
        ++pos;
    return pos;
}

Cycle
Mmu::boundedWalkStart(Cycle now, std::size_t demands_ahead) const
{
    std::vector<Cycle> free = walkerFreeAt;
    for (std::size_t k = 0;; ++k) {
        auto it = std::min_element(free.begin(), free.end());
        Cycle start = *it < now ? now : *it;
        if (k == demands_ahead)
            return start;
        *it = start + cfg.walkLatency;
    }
}

Mmu::Walk &
Mmu::requestWalk(Addr vpn, Cycle now, bool is_demand, bool fill_itlb,
                 bool fill_l2, bool &created)
{
    auto it = walks.find(vpn);
    if (it != walks.end()) {
        // A walk (or refill) for this page is already in flight: join
        // it. A demand joining a non-filling prefetch walk upgrades it
        // to fill, and a demand joining a *queued* prefetch walk also
        // upgrades its queue priority — it moves ahead of every other
        // queued prefetch walk, making its completion exact again.
        Walk &w = it->second;
        w.fillItlb |= fill_itlb;
        w.fillL2 |= fill_l2;
        if (is_demand && !w.demand) {
            w.demand = true;
            if (!w.started) {
                auto q = std::find(walkQueue.begin(), walkQueue.end(),
                                   vpn);
                panic_if(q == walkQueue.end(),
                         "un-started walk missing from the queue");
                walkQueue.erase(q);
                std::size_t pos = demandQueuePosition();
                w.readyAt = boundedWalkStart(now, pos) +
                    cfg.walkLatency;
                walkQueue.insert(
                    walkQueue.begin() + static_cast<long>(pos), vpn);
                stWalkUpgrades.inc();
            }
        }
        stWalkMerges.inc();
        created = false;
        return w;
    }

    Walk w;
    w.id = nextWalkId++;
    w.queuedAt = now;
    w.isWalk = true;
    w.demand = is_demand;
    w.fillItlb = fill_itlb;
    w.fillL2 = fill_l2;

    bool start_now = true;
    if (!walkerFreeAt.empty()) {
        auto free_it = std::find_if(
            walkerFreeAt.begin(), walkerFreeAt.end(),
            [now](Cycle c) { return c <= now; });
        // Invariant: a free walker implies an empty queue (tick()
        // drains the queue onto freed walkers before components run).
        start_now = free_it != walkerFreeAt.end() && walkQueue.empty();
        if (start_now)
            *free_it = now + cfg.walkLatency;
    }
    if (start_now) {
        w.started = true;
        w.readyAt = now + cfg.walkLatency;
    } else {
        w.started = false;
        // A queued demand's completion is exact: demands are served
        // FIFO and prefetch walks never overtake them. A queued
        // prefetch walk's completion is unknown (later demands may
        // still jump ahead): readyAt stays kNever until it starts.
        if (is_demand) {
            w.readyAt = boundedWalkStart(now, demandQueuePosition()) +
                cfg.walkLatency;
        }
        stWalksQueued.inc();
    }
    auto [ins, ok] = walks.emplace(vpn, w);
    if (!w.started) {
        std::size_t pos = is_demand ? demandQueuePosition()
                                    : walkQueue.size();
        walkQueue.insert(walkQueue.begin() + static_cast<long>(pos),
                         vpn);
    }
    stWalks.inc();
    created = true;
    return ins->second;
}

Mmu::Walk &
Mmu::requestL2Refill(Addr vpn, Cycle now, bool fill_itlb, bool &created)
{
    auto it = walks.find(vpn);
    if (it != walks.end()) {
        it->second.fillItlb |= fill_itlb;
        stWalkMerges.inc();
        created = false;
        return it->second;
    }
    Walk w;
    w.id = nextWalkId++;
    w.queuedAt = now;
    w.started = true;
    w.isWalk = false;
    w.fillItlb = fill_itlb;
    w.fillL2 = false; // already resident in the L2 TLB
    w.readyAt = now + cfg.l2TlbLatency;
    auto [ins, ok] = walks.emplace(vpn, w);
    created = true;
    return ins->second;
}

TlbAccess
Mmu::demandTranslate(Addr vaddr, Cycle now)
{
    TlbAccess res;
    res.paddr = vaddr;
    res.readyAt = now;
    if (!cfg.enable)
        return res;

    res.paddr = pt.translate(vaddr);
    Addr vpn = pt.vpn(vaddr);
    if (itlb_.access(vpn))
        return res;

    res.hit = false;
    bool created = false;
    // Join an in-flight walk/refill before probing the L2 TLB: a page
    // with a walk in flight cannot be L2-resident (fills install only
    // at completion, which erases the walk).
    if (walks.count(vpn) != 0) {
        Walk &w = requestWalk(vpn, now, /*is_demand=*/true,
                              /*fill_itlb=*/true,
                              /*fill_l2=*/l2_ != nullptr, created);
        res.readyAt = w.readyAt;
        return res;
    }
    if (l2_ != nullptr && l2_->access(vpn)) {
        Walk &w = requestL2Refill(vpn, now, /*fill_itlb=*/true, created);
        if (created)
            stL2HitFills.inc();
        res.readyAt = w.readyAt;
        return res;
    }
    Walk &w = requestWalk(vpn, now, /*is_demand=*/true,
                          /*fill_itlb=*/true,
                          /*fill_l2=*/l2_ != nullptr, created);
    if (created)
        stDemandWalks.inc();
    res.readyAt = w.readyAt;
    return res;
}

PfTranslation
Mmu::prefetchTranslate(Addr vaddr, Cycle now)
{
    PfTranslation res;
    res.paddr = vaddr;
    res.readyAt = now;
    if (!cfg.enable)
        return res;

    res.paddr = pt.translate(vaddr);
    Addr vpn = pt.vpn(vaddr);
    res.vpn = vpn;
    if (itlb_.lookup(vpn)) {
        stPfTlbHits.inc();
        return res;
    }

    stPfTlbMisses.inc();
    bool fill = cfg.prefetchPolicy == TlbPrefetchPolicy::Fill;
    bool created = false;
    auto it = walks.find(vpn);

    if (cfg.prefetchPolicy == TlbPrefetchPolicy::Drop) {
        // Drop refuses to wait on any page walk — including one
        // already in flight for this page. It does ride the short L2
        // refill path: an L2-TLB hit is a TLB access, not a walk.
        if (it != walks.end() && !it->second.isWalk) {
            Walk &w = requestL2Refill(vpn, now, /*fill_itlb=*/false,
                                      created);
            res.status = PfTranslation::Status::Walking;
            res.readyAt = w.readyAt;
            res.walkId = w.id;
            return res;
        }
        if (it == walks.end() && l2_ != nullptr && l2_->lookup(vpn)) {
            stPfL2Hits.inc();
            Walk &w = requestL2Refill(vpn, now, /*fill_itlb=*/false,
                                      created);
            res.status = PfTranslation::Status::Walking;
            res.readyAt = w.readyAt;
            res.walkId = w.id;
            return res;
        }
        res.status = PfTranslation::Status::Dropped;
        stPfDropped.inc();
        return res;
    }

    // Wait / Fill: join an in-flight walk or refill before probing
    // the L2 TLB (a page with a walk in flight is not L2-resident).
    if (it != walks.end()) {
        Walk &w = requestWalk(vpn, now, /*is_demand=*/false,
                              /*fill_itlb=*/fill,
                              /*fill_l2=*/fill && l2_ != nullptr,
                              created);
        res.status = PfTranslation::Status::Walking;
        res.readyAt = w.readyAt;
        res.walkId = w.id;
        return res;
    }

    // L2-TLB hit: a short ITLB refill instead of a full walk. The
    // ITLB is only polluted under the Fill policy.
    if (l2_ != nullptr && l2_->lookup(vpn)) {
        stPfL2Hits.inc();
        Walk &w = requestL2Refill(vpn, now, /*fill_itlb=*/fill, created);
        res.status = PfTranslation::Status::Walking;
        res.readyAt = w.readyAt;
        res.walkId = w.id;
        return res;
    }

    Walk &w = requestWalk(vpn, now, /*is_demand=*/false,
                          /*fill_itlb=*/fill,
                          /*fill_l2=*/fill && l2_ != nullptr, created);
    res.status = PfTranslation::Status::Walking;
    res.readyAt = w.readyAt;
    res.walkId = w.id;
    if (created) {
        stPfWalks.inc();
        if (fill)
            stPfFills.inc();
    }
    return res;
}

PfTranslation
Mmu::tlbPrefetchTranslate(Addr vaddr, Cycle now)
{
    PfTranslation res;
    res.paddr = vaddr;
    res.readyAt = now;
    if (!cfg.enable)
        return res;

    res.paddr = pt.translate(vaddr);
    Addr vpn = pt.vpn(vaddr);
    res.vpn = vpn;
    if (itlb_.lookup(vpn))
        return res;

    bool created = false;
    if (walks.count(vpn) == 0 && l2_ != nullptr && l2_->lookup(vpn)) {
        Walk &w = requestL2Refill(vpn, now, /*fill_itlb=*/true, created);
        res.status = PfTranslation::Status::Walking;
        res.readyAt = w.readyAt;
        res.walkId = w.id;
        return res;
    }
    Walk &w = requestWalk(vpn, now, /*is_demand=*/false,
                          /*fill_itlb=*/true,
                          /*fill_l2=*/l2_ != nullptr, created);
    res.status = PfTranslation::Status::Walking;
    res.readyAt = w.readyAt;
    res.walkId = w.id;
    if (created)
        stTlbPfWalks.inc();
    return res;
}

bool
Mmu::walkPending(Addr vpn, std::uint64_t walk_id) const
{
    auto it = walks.find(vpn);
    return it != walks.end() && it->second.id == walk_id;
}

Cycle
Mmu::walkReadyCycle(Addr vpn, std::uint64_t walk_id) const
{
    auto it = walks.find(vpn);
    if (it == walks.end() || it->second.id != walk_id)
        return 0;
    return it->second.started ? it->second.readyAt : kNever;
}

Addr
Mmu::translateFunctional(Addr vaddr) const
{
    return cfg.enable ? pt.translate(vaddr) : vaddr;
}

bool
Mmu::tlbHolds(Addr vaddr) const
{
    return !cfg.enable || itlb_.lookup(pt.vpn(vaddr));
}

void
Mmu::collectStats(StatSet &out) const
{
    out.merge(stats);
    out.merge(itlb_.stats);
    if (l2_ != nullptr)
        out.merge(l2_->stats);
}

} // namespace fdip
