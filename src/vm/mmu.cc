#include "vm/mmu.hh"

#include "common/logging.hh"
#include "trace/program.hh"

namespace fdip
{

const char *
tlbPolicyName(TlbPrefetchPolicy policy)
{
    switch (policy) {
      case TlbPrefetchPolicy::Drop: return "drop";
      case TlbPrefetchPolicy::Wait: return "wait";
      case TlbPrefetchPolicy::Fill: return "fill";
    }
    return "?";
}

Mmu::Mmu(const VmConfig &config, Addr code_base, Addr code_end)
    : cfg(config),
      pt(code_base, code_end, cfg.pageBytes, cfg.mapping, cfg.mapSeed),
      itlb_({cfg.itlbEntries, cfg.itlbAssoc})
{
    fatal_if(cfg.enable && cfg.walkLatency == 0,
             "page-walk latency must be nonzero");
}

Mmu::Mmu(const VmConfig &config, const Program &prog)
    : Mmu(config, prog.base, prog.codeEnd())
{}

void
Mmu::tick(Cycle now)
{
    if (!cfg.enable || walks.empty())
        return;
    for (auto it = walks.begin(); it != walks.end();) {
        if (it->second.readyAt <= now) {
            if (it->second.fillTlb)
                itlb_.insert(it->first);
            it = walks.erase(it);
        } else {
            ++it;
        }
    }
}

Cycle
Mmu::nextEventCycle(Cycle now) const
{
    Cycle next = kNever;
    for (const auto &[vpn, walk] : walks) {
        if (walk.readyAt < next)
            next = walk.readyAt;
    }
    return next <= now ? now + 1 : next;
}

Cycle
Mmu::startWalk(Addr vpn, Cycle now, bool fill_tlb, bool &created)
{
    auto it = walks.find(vpn);
    if (it != walks.end()) {
        // A walk for this page is already in flight: join it. A demand
        // joining a non-filling prefetch walk upgrades it to fill.
        it->second.fillTlb |= fill_tlb;
        stWalkMerges.inc();
        created = false;
        return it->second.readyAt;
    }
    Cycle ready = now + cfg.walkLatency;
    walks.emplace(vpn, Walk{ready, fill_tlb});
    stWalks.inc();
    created = true;
    return ready;
}

TlbAccess
Mmu::demandTranslate(Addr vaddr, Cycle now)
{
    TlbAccess res;
    res.paddr = vaddr;
    res.readyAt = now;
    if (!cfg.enable)
        return res;

    res.paddr = pt.translate(vaddr);
    Addr vpn = pt.vpn(vaddr);
    if (itlb_.access(vpn))
        return res;

    res.hit = false;
    bool created = false;
    res.readyAt = startWalk(vpn, now, /*fill_tlb=*/true, created);
    if (created)
        stDemandWalks.inc();
    return res;
}

PfTranslation
Mmu::prefetchTranslate(Addr vaddr, Cycle now)
{
    PfTranslation res;
    res.paddr = vaddr;
    res.readyAt = now;
    if (!cfg.enable)
        return res;

    res.paddr = pt.translate(vaddr);
    Addr vpn = pt.vpn(vaddr);
    if (itlb_.lookup(vpn)) {
        stPfTlbHits.inc();
        return res;
    }

    stPfTlbMisses.inc();
    bool created = false;
    switch (cfg.prefetchPolicy) {
      case TlbPrefetchPolicy::Drop:
        res.status = PfTranslation::Status::Dropped;
        stPfDropped.inc();
        break;
      case TlbPrefetchPolicy::Wait:
        res.status = PfTranslation::Status::Walking;
        res.readyAt = startWalk(vpn, now, /*fill_tlb=*/false, created);
        if (created)
            stPfWalks.inc();
        break;
      case TlbPrefetchPolicy::Fill:
        res.status = PfTranslation::Status::Walking;
        res.readyAt = startWalk(vpn, now, /*fill_tlb=*/true, created);
        if (created) {
            stPfWalks.inc();
            stPfFills.inc();
        }
        break;
    }
    return res;
}

Addr
Mmu::translateFunctional(Addr vaddr) const
{
    return cfg.enable ? pt.translate(vaddr) : vaddr;
}

bool
Mmu::tlbHolds(Addr vaddr) const
{
    return !cfg.enable || itlb_.lookup(pt.vpn(vaddr));
}

void
Mmu::collectStats(StatSet &out) const
{
    out.merge(stats);
    out.merge(itlb_.stats);
}

} // namespace fdip
