#include "vm/tlb_prefetcher.hh"

#include "common/logging.hh"
#include "frontend/ftq.hh"
#include "vm/mmu.hh"

namespace fdip
{

TlbPrefetcher::TlbPrefetcher(const Ftq &ftq_ref, Mmu &mmu_ref,
                             const Config &config)
    : ftq(ftq_ref), mmu(mmu_ref), cfg(config),
      recentVpns(cfg.filterEntries, invalidAddr)
{
    fatal_if(cfg.width == 0, "TLB-prefetch width must be nonzero");
    fatal_if(cfg.filterEntries == 0,
             "TLB-prefetch filter needs at least one entry");
    recentSet.reserve(cfg.filterEntries);
}

bool
TlbPrefetcher::recentlyProbed(Addr vpn) const
{
    return recentSet.count(vpn) != 0;
}

void
TlbPrefetcher::markProbed(Addr vpn)
{
    Addr evicted = recentVpns[recentNext];
    if (evicted != invalidAddr)
        recentSet.erase(evicted);
    recentVpns[recentNext] = vpn;
    recentSet.insert(vpn);
    recentNext = (recentNext + 1) % recentVpns.size();
    // Evicting a page may re-expose an FTQ page: drop the memo.
    idleValid = false;
}

bool
TlbPrefetcher::atFixedPoint() const
{
    if (idleValid && idleVersion == ftq.version())
        return true;
    for (std::size_t i = 1; i < ftq.size(); ++i) {
        unsigned n_blocks = ftq.numCacheBlocks(i);
        for (unsigned k = 0; k < n_blocks; ++k) {
            Addr vpn = mmu.pageTable().vpn(ftq.cacheBlockAddr(i, k));
            if (!recentlyProbed(vpn))
                return false;
        }
    }
    // Every page filtered: the verdict holds until the FTQ changes
    // (only probing mutates the filter, and there is nothing left to
    // probe).
    idleValid = true;
    idleVersion = ftq.version();
    return true;
}

void
TlbPrefetcher::tick(Cycle now)
{
    if (atFixedPoint())
        return;
    unsigned started = 0;
    // Entry 0 is the fetch point (its translation is the demand
    // fetch's own walk); deeper entries are the lookahead.
    for (std::size_t i = 1; i < ftq.size(); ++i) {
        unsigned n_blocks = ftq.numCacheBlocks(i);
        for (unsigned k = 0; k < n_blocks; ++k) {
            Addr vaddr = ftq.cacheBlockAddr(i, k);
            Addr vpn = mmu.pageTable().vpn(vaddr);
            if (recentlyProbed(vpn))
                continue;
            markProbed(vpn);
            stProbes.inc();
            PfTranslation tr = mmu.tlbPrefetchTranslate(vaddr, now);
            if (tr.status == PfTranslation::Status::Ready) {
                stTlbHot.inc();
                continue;
            }
            stRequests.inc();
            if (++started >= cfg.width)
                return;
        }
    }
}

Cycle
TlbPrefetcher::nextEventCycle(Cycle now) const
{
    return atFixedPoint() ? kNever : now + 1;
}

} // namespace fdip
