/**
 * @file itlb.hh
 * Instruction TLB: a set-associative, true-LRU cache of virtual page
 * numbers. Only presence matters (the physical frame comes from the
 * page table), so entries store the full VPN as their tag. Demand
 * lookups update recency and statistics; the probe path is
 * side-effect-free so prefetchers can test translations without
 * perturbing replacement state.
 */

#ifndef FDIP_VM_ITLB_HH
#define FDIP_VM_ITLB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

class Itlb
{
  public:
    struct Config
    {
        unsigned entries = 64;
        unsigned assoc = 4;
    };

    explicit Itlb(const Config &config);

    /** Tag check only: no LRU update, no stats side effects. */
    bool lookup(Addr vpn) const;

    /** Demand lookup: updates LRU and hit/miss statistics. */
    bool access(Addr vpn);

    /** Install a translation, evicting the set's LRU entry if full. */
    void insert(Addr vpn);

    /** Remove the translation; true if it was present. */
    bool invalidate(Addr vpn);

    const Config &config() const { return cfg; }
    unsigned numSets() const { return sets; }
    unsigned numEntries() const { return cfg.entries; }
    unsigned validEntries() const;

    StatSet stats;

  private:
    StatSet::Counter stAccesses = stats.registerCounter("itlb.accesses");
    StatSet::Counter stMisses = stats.registerCounter("itlb.misses");
    StatSet::Counter stHits = stats.registerCounter("itlb.hits");
    StatSet::Counter stEvictions = stats.registerCounter("itlb.evictions");
    StatSet::Counter stFills = stats.registerCounter("itlb.fills");

    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setBase(Addr vpn) const;
    Entry *find(Addr vpn);
    const Entry *find(Addr vpn) const;

    Config cfg;
    unsigned sets;
    std::vector<Entry> entries_;
    std::uint64_t lruClock = 0;
};

} // namespace fdip

#endif // FDIP_VM_ITLB_HH
