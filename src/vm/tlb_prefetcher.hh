/**
 * @file tlb_prefetcher.hh
 * Decoupled TLB prefetching: translation lookahead over the FTQ,
 * independent of the block prefetcher's data lookahead.
 *
 * Every cycle the TLB prefetcher scans the FTQ past the fetch point
 * (entry 0 is being demand-fetched; its walk is the fetch engine's
 * problem), extracts the virtual pages the predicted fetch stream
 * will touch, and asks the MMU to warm their translations — an L2-TLB
 * refill when the page is L2-resident, a prefetch-priority page walk
 * otherwise, filling both TLB levels on completion. By the time the
 * demand fetch (or a block prefetcher's translation probe) reaches
 * the page, the ITLB already holds it.
 *
 * The prefetcher is fire-and-forget: it never waits on the walks it
 * starts, so it charges no per-cycle stall counters and its
 * chargeIdleCycles() is a no-op. A recently-probed-page ring filter
 * (with an O(1) membership mirror) keeps it from re-requesting the
 * same FTQ pages every cycle; pages are marked probed whatever the
 * outcome, so a quiescent machine (static FTQ, no fills) reaches a
 * fixed point where tick() provably does nothing — which is exactly
 * what nextEventCycle() reports, keeping event-driven idle-cycle
 * skipping bit-identical. The fixed-point verdict is memoized
 * against Ftq::version() so steady-state cycles cost O(1) instead of
 * a full rescan.
 */

#ifndef FDIP_VM_TLB_PREFETCHER_HH
#define FDIP_VM_TLB_PREFETCHER_HH

#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

class Ftq;
class Mmu;

class TlbPrefetcher
{
  public:
    struct Config
    {
        /** Translation requests (walks/refills) started per cycle. */
        unsigned width = 2;
        /** Recently-probed-VPN ring filter size. */
        unsigned filterEntries = 64;
    };

    TlbPrefetcher(const Ftq &ftq, Mmu &mmu, const Config &config);

    /** Scan the FTQ and warm translations; once a cycle. */
    void tick(Cycle now);

    /**
     * Quiescence protocol: now + 1 while any FTQ page past the fetch
     * point is not yet in the probe filter (tick() would probe it),
     * kNever otherwise. The filter only changes when tick() probes,
     * so a kNever verdict is stable across a skipped window (and is
     * memoized until the FTQ's content version changes).
     */
    Cycle nextEventCycle(Cycle now) const;

    StatSet stats;

  private:
    StatSet::Counter stProbes = stats.registerCounter("tlbpf.probes");
    StatSet::Counter stTlbHot = stats.registerCounter("tlbpf.tlb_hot");
    StatSet::Counter stRequests = stats.registerCounter("tlbpf.requests");

    bool recentlyProbed(Addr vpn) const;
    void markProbed(Addr vpn);
    /** Pure scan: is every FTQ page past the fetch point filtered? */
    bool atFixedPoint() const;

    const Ftq &ftq;
    Mmu &mmu;
    Config cfg;
    std::vector<Addr> recentVpns;
    std::size_t recentNext = 0;
    /** O(1) membership mirror of the ring. */
    std::unordered_set<Addr> recentSet;
    /** Memoized "nothing left to probe" verdict, valid while the FTQ
     *  version is unchanged (probing invalidates it). */
    mutable bool idleValid = false;
    mutable std::uint64_t idleVersion = 0;
};

} // namespace fdip

#endif // FDIP_VM_TLB_PREFETCHER_HH
