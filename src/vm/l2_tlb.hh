/**
 * @file l2_tlb.hh
 * Second-level TLB: a larger, slower, set-associative true-LRU cache
 * of virtual page numbers behind the ITLB. ITLB misses probe it
 * before paying a full page walk; a hit refills the ITLB after a
 * short fixed latency instead of occupying a page-table walker.
 * Like the ITLB, only presence matters (the physical frame comes
 * from the page table), demand accesses update recency and
 * statistics, and the probe path is side-effect-free.
 */

#ifndef FDIP_VM_L2_TLB_HH
#define FDIP_VM_L2_TLB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

class L2Tlb
{
  public:
    struct Config
    {
        unsigned entries = 512;
        unsigned assoc = 8;
        /** ITLB-refill latency on an L2-TLB hit, in cycles. */
        Cycle hitLatency = 8;
    };

    explicit L2Tlb(const Config &config);

    /** Tag check only: no LRU update, no stats side effects. */
    bool lookup(Addr vpn) const;

    /** Demand lookup: updates LRU and hit/miss statistics. */
    bool access(Addr vpn);

    /** Install a translation, evicting the set's LRU entry if full. */
    void insert(Addr vpn);

    /** Remove the translation; true if it was present. */
    bool invalidate(Addr vpn);

    const Config &config() const { return cfg; }
    Cycle hitLatency() const { return cfg.hitLatency; }
    unsigned numSets() const { return sets; }
    unsigned numEntries() const { return cfg.entries; }
    unsigned validEntries() const;

    StatSet stats;

  private:
    StatSet::Counter stAccesses = stats.registerCounter("l2tlb.accesses");
    StatSet::Counter stMisses = stats.registerCounter("l2tlb.misses");
    StatSet::Counter stHits = stats.registerCounter("l2tlb.hits");
    StatSet::Counter stEvictions = stats.registerCounter("l2tlb.evictions");
    StatSet::Counter stFills = stats.registerCounter("l2tlb.fills");

    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setBase(Addr vpn) const;
    Entry *find(Addr vpn);
    const Entry *find(Addr vpn) const;

    Config cfg;
    unsigned sets;
    std::vector<Entry> entries_;
    std::uint64_t lruClock = 0;
};

} // namespace fdip

#endif // FDIP_VM_L2_TLB_HH
