/**
 * @file bus.hh
 * A finite-bandwidth transfer resource: one transaction at a time, each
 * occupying the bus for blockBytes/bytesPerCycle cycles. Demand traffic
 * queues behind whatever is in flight; prefetch traffic is only granted
 * an *idle* bus, which is how demand fetches keep priority.
 */

#ifndef FDIP_MEM_BUS_HH
#define FDIP_MEM_BUS_HH

#include <optional>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

class Bus
{
  public:
    Bus(std::string name, unsigned bytes_per_cycle);

    /**
     * Demand transfer of @p bytes starting no earlier than @p now;
     * queues behind current traffic. Returns completion time.
     */
    Cycle transfer(Cycle now, unsigned bytes);

    /**
     * Prefetch transfer: granted only if the bus is idle at @p now.
     * Returns completion time, or nullopt when the bus is busy.
     */
    std::optional<Cycle> tryTransfer(Cycle now, unsigned bytes);

    bool idleAt(Cycle now) const { return busyUntil <= now; }

    /** Completion time of the transfer in flight (0 when none ever). */
    Cycle freeAtCycle() const { return busyUntil; }

    /** Cycles the bus spent transferring data so far. */
    Cycle busyCycles() const { return totalBusy; }

    /** Fraction of @p elapsed cycles the bus was occupied. */
    double utilization(Cycle elapsed) const;

    const std::string &name() const { return label; }

    StatSet stats;

  private:
    StatSet::Counter stBusyCycles = stats.registerCounter("bus.busy_cycles");
    StatSet::Counter stTransfers = stats.registerCounter("bus.transfers");
    StatSet::Counter stDemandTransfers =
        stats.registerCounter("bus.demand_transfers");
    StatSet::Counter stPrefetchTransfers =
        stats.registerCounter("bus.prefetch_transfers");
    StatSet::Counter stBytes = stats.registerCounter("bus.bytes");
    StatSet::Counter stDemandQueueCycles =
        stats.registerCounter("bus.demand_queue_cycles");
    StatSet::Counter stPrefetchDenied =
        stats.registerCounter("bus.prefetch_denied");

    Cycle cyclesFor(unsigned bytes) const;

    std::string label;
    unsigned bytesPerCycle;
    Cycle busyUntil = 0;
    Cycle totalBusy = 0;
};

} // namespace fdip

#endif // FDIP_MEM_BUS_HH
