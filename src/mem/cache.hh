/**
 * @file cache.hh
 * Set-associative cache tag/presence model with true-LRU replacement.
 * Only tags matter to a front-end study; no data is stored. Each block
 * carries a "first-use" tag bit driving tagged next-line prefetching.
 */

#ifndef FDIP_MEM_CACHE_HH
#define FDIP_MEM_CACHE_HH

#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

/** Victim-selection policy. */
enum class ReplPolicy : std::uint8_t
{
    Lru,    ///< true least-recently-used
    Fifo,   ///< oldest fill leaves first (no access recency)
    Random, ///< pseudo-random way (cheap hardware)
};

const char *replPolicyName(ReplPolicy policy);

class Cache
{
  public:
    struct Config
    {
        std::string name = "cache";
        std::uint64_t sizeBytes = 16 * 1024;
        unsigned assoc = 2;
        unsigned blockBytes = 32;
        ReplPolicy repl = ReplPolicy::Lru;
    };

    explicit Cache(const Config &config);

    Addr
    blockAlign(Addr addr) const
    {
        return addr & ~Addr(cfg.blockBytes - 1);
    }

    /** Tag check only: no LRU update, no stats side effects. */
    bool probe(Addr addr) const;

    /** Demand access: updates LRU and hit/miss statistics. */
    bool access(Addr addr);

    /**
     * Fill @p addr, evicting LRU if needed. @p first_use_tag seeds the
     * tagged-prefetch bit. Returns the evicted block, if any.
     */
    std::optional<Addr> insert(Addr addr, bool first_use_tag = true);

    /** Remove the block; true if it was present. */
    bool invalidate(Addr addr);

    /**
     * Tagged-prefetch support: if the block is present and its tag bit
     * is set, clear it and return true ("first demand use").
     */
    bool consumeFirstUse(Addr addr);

    const Config &config() const { return cfg; }
    unsigned numSets() const { return sets; }
    unsigned numBlocks() const { return sets * cfg.assoc; }
    unsigned validBlocks() const;

    StatSet stats;

  private:
    StatSet::Counter stAccesses = stats.registerCounter("cache.accesses");
    StatSet::Counter stHits = stats.registerCounter("cache.hits");
    StatSet::Counter stMisses = stats.registerCounter("cache.misses");
    StatSet::Counter stEvictions = stats.registerCounter("cache.evictions");
    StatSet::Counter stFills = stats.registerCounter("cache.fills");
    StatSet::Counter stInvalidations =
        stats.registerCounter("cache.invalidations");

    struct Block
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
        bool firstUseTag = false;
    };

    std::size_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Block *findBlock(Addr addr);
    const Block *findBlock(Addr addr) const;
    Block *pickVictim(std::size_t set_base);

    Config cfg;
    unsigned sets;
    std::vector<Block> blocks;
    std::uint64_t lruClock = 0;
    std::uint64_t randState = 0x243f6a8885a308d3ULL;
};

} // namespace fdip

#endif // FDIP_MEM_CACHE_HH
