/**
 * @file victim_cache.hh
 * Jouppi-style victim cache: a small fully-associative buffer beside
 * the L1-I that catches evicted blocks. A demand miss that hits the
 * victim cache swaps the block back into the L1, converting conflict
 * misses into short hits. Proposed in the same ISCA'90 paper as the
 * stream buffers this repository also models.
 */

#ifndef FDIP_MEM_VICTIM_CACHE_HH
#define FDIP_MEM_VICTIM_CACHE_HH

#include <deque>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

class VictimCache
{
  public:
    /** @param entries capacity; 0 disables the cache entirely. */
    explicit VictimCache(unsigned entries);

    bool enabled() const { return cap > 0; }

    bool probe(Addr block_addr) const;

    /** Hit path: remove and return true (block swaps into the L1). */
    bool extract(Addr block_addr);

    /** Eviction path: stash a victim, LRU-replacing when full. */
    void insert(Addr block_addr);

    unsigned size() const { return static_cast<unsigned>(buf.size()); }
    unsigned capacity() const { return cap; }

    void clear();

    StatSet stats;

  private:
    StatSet::Counter stHits = stats.registerCounter("vc.hits");
    StatSet::Counter stEvictions = stats.registerCounter("vc.evictions");
    StatSet::Counter stFills = stats.registerCounter("vc.fills");

    std::deque<Addr> buf; ///< front = LRU, back = MRU
    unsigned cap;
};

} // namespace fdip

#endif // FDIP_MEM_VICTIM_CACHE_HH
