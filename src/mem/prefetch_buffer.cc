#include "mem/prefetch_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fdip
{

PrefetchBuffer::PrefetchBuffer(unsigned entries)
    : cap(entries)
{
    fatal_if(entries == 0, "prefetch buffer needs at least one entry");
}

bool
PrefetchBuffer::probe(Addr block_addr) const
{
    return std::any_of(buf.begin(), buf.end(),
                       [&](const Slot &s) { return s.addr == block_addr; });
}

bool
PrefetchBuffer::consume(Addr block_addr)
{
    for (auto it = buf.begin(); it != buf.end(); ++it) {
        if (it->addr == block_addr) {
            buf.erase(it);
            stConsumed.inc();
            return true;
        }
    }
    return false;
}

std::optional<Addr>
PrefetchBuffer::insert(Addr block_addr)
{
    if (probe(block_addr)) {
        stDuplicateFills.inc();
        return std::nullopt;
    }
    std::optional<Addr> evicted;
    if (buf.size() == cap) {
        evicted = buf.front().addr;
        buf.pop_front();
        stUnusedEvictions.inc();
    }
    buf.push_back({block_addr});
    stFills.inc();
    return evicted;
}

void
PrefetchBuffer::clear()
{
    stFlushedEntries.inc(buf.size());
    buf.clear();
}

} // namespace fdip
