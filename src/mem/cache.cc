#include "mem/cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

Cache::Cache(const Config &config)
    : cfg(config)
{
    fatal_if(cfg.blockBytes == 0 || !isPowerOf2(cfg.blockBytes),
             "cache '%s': block size must be a power of two",
             cfg.name.c_str());
    fatal_if(cfg.assoc == 0, "cache '%s': zero associativity",
             cfg.name.c_str());
    std::uint64_t num_blocks = cfg.sizeBytes / cfg.blockBytes;
    fatal_if(num_blocks == 0 || num_blocks % cfg.assoc != 0,
             "cache '%s': size/assoc/block geometry invalid",
             cfg.name.c_str());
    sets = static_cast<unsigned>(num_blocks / cfg.assoc);
    fatal_if(!isPowerOf2(sets), "cache '%s': set count must be 2^n",
             cfg.name.c_str());
    blocks.resize(num_blocks);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / cfg.blockBytes) & (sets - 1);
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / cfg.blockBytes) >> floorLog2(sets);
}

Cache::Block *
Cache::findBlock(Addr addr)
{
    std::size_t base = setIndex(addr) * cfg.assoc;
    std::uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Block &b = blocks[base + w];
        if (b.valid && b.tag == tag)
            return &b;
    }
    return nullptr;
}

const Cache::Block *
Cache::findBlock(Addr addr) const
{
    return const_cast<Cache *>(this)->findBlock(addr);
}

bool
Cache::probe(Addr addr) const
{
    return findBlock(addr) != nullptr;
}

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::Lru: return "lru";
      case ReplPolicy::Fifo: return "fifo";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

bool
Cache::access(Addr addr)
{
    stAccesses.inc();
    if (Block *b = findBlock(addr)) {
        // FIFO ignores access recency: the stamp is fill time only.
        if (cfg.repl == ReplPolicy::Lru)
            b->lruStamp = ++lruClock;
        stHits.inc();
        return true;
    }
    stMisses.inc();
    return false;
}

Cache::Block *
Cache::pickVictim(std::size_t set_base)
{
    // Invalid ways fill first under every policy.
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (!blocks[set_base + w].valid)
            return &blocks[set_base + w];
    }
    if (cfg.repl == ReplPolicy::Random) {
        // xorshift64 way choice: cheap and deterministic per run.
        randState ^= randState << 13;
        randState ^= randState >> 7;
        randState ^= randState << 17;
        return &blocks[set_base + randState % cfg.assoc];
    }
    // LRU and FIFO both evict the smallest stamp; they differ in
    // whether access() refreshes it.
    Block *victim = &blocks[set_base];
    for (unsigned w = 1; w < cfg.assoc; ++w) {
        if (blocks[set_base + w].lruStamp < victim->lruStamp)
            victim = &blocks[set_base + w];
    }
    return victim;
}

std::optional<Addr>
Cache::insert(Addr addr, bool first_use_tag)
{
    std::size_t base = setIndex(addr) * cfg.assoc;
    std::uint64_t tag = tagOf(addr);

    if (Block *b = findBlock(addr)) {
        // Already present (e.g. duplicate fill): refresh only.
        b->lruStamp = ++lruClock;
        return std::nullopt;
    }

    Block *victim = pickVictim(base);

    std::optional<Addr> evicted;
    if (victim->valid) {
        stEvictions.inc();
        std::uint64_t set = setIndex(addr);
        evicted = ((victim->tag << floorLog2(sets)) | set) *
            cfg.blockBytes;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = ++lruClock;
    victim->firstUseTag = first_use_tag;
    stFills.inc();
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    if (Block *b = findBlock(addr)) {
        b->valid = false;
        stInvalidations.inc();
        return true;
    }
    return false;
}

bool
Cache::consumeFirstUse(Addr addr)
{
    if (Block *b = findBlock(addr)) {
        if (b->firstUseTag) {
            b->firstUseTag = false;
            return true;
        }
    }
    return false;
}

unsigned
Cache::validBlocks() const
{
    unsigned n = 0;
    for (const auto &b : blocks) {
        if (b.valid)
            ++n;
    }
    return n;
}

} // namespace fdip
