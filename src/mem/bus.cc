#include "mem/bus.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

Bus::Bus(std::string name, unsigned bytes_per_cycle)
    : label(std::move(name)), bytesPerCycle(bytes_per_cycle)
{
    fatal_if(bytesPerCycle == 0, "bus '%s' with zero bandwidth",
             label.c_str());
}

Cycle
Bus::cyclesFor(unsigned bytes) const
{
    return divCeil(bytes, bytesPerCycle);
}

Cycle
Bus::transfer(Cycle now, unsigned bytes)
{
    Cycle start = busyUntil > now ? busyUntil : now;
    Cycle cycles = cyclesFor(bytes);
    busyUntil = start + cycles;
    totalBusy += cycles;
    stats.inc("bus.busy_cycles", cycles);
    stats.inc("bus.transfers");
    stats.inc("bus.demand_transfers");
    stats.inc("bus.bytes", bytes);
    if (start > now)
        stats.inc("bus.demand_queue_cycles", start - now);
    return busyUntil;
}

std::optional<Cycle>
Bus::tryTransfer(Cycle now, unsigned bytes)
{
    if (busyUntil > now) {
        stats.inc("bus.prefetch_denied");
        return std::nullopt;
    }
    Cycle cycles = cyclesFor(bytes);
    busyUntil = now + cycles;
    totalBusy += cycles;
    stats.inc("bus.busy_cycles", cycles);
    stats.inc("bus.transfers");
    stats.inc("bus.prefetch_transfers");
    stats.inc("bus.bytes", bytes);
    return busyUntil;
}

double
Bus::utilization(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(totalBusy) / static_cast<double>(elapsed);
}

} // namespace fdip
