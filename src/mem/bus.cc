#include "mem/bus.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

Bus::Bus(std::string name, unsigned bytes_per_cycle)
    : label(std::move(name)), bytesPerCycle(bytes_per_cycle)
{
    fatal_if(bytesPerCycle == 0, "bus '%s' with zero bandwidth",
             label.c_str());
}

Cycle
Bus::cyclesFor(unsigned bytes) const
{
    return divCeil(bytes, bytesPerCycle);
}

Cycle
Bus::transfer(Cycle now, unsigned bytes)
{
    Cycle start = busyUntil > now ? busyUntil : now;
    Cycle cycles = cyclesFor(bytes);
    busyUntil = start + cycles;
    totalBusy += cycles;
    stBusyCycles.inc(cycles);
    stTransfers.inc();
    stDemandTransfers.inc();
    stBytes.inc(bytes);
    if (start > now)
        stDemandQueueCycles.inc(start - now);
    return busyUntil;
}

std::optional<Cycle>
Bus::tryTransfer(Cycle now, unsigned bytes)
{
    if (busyUntil > now) {
        stPrefetchDenied.inc();
        return std::nullopt;
    }
    Cycle cycles = cyclesFor(bytes);
    busyUntil = now + cycles;
    totalBusy += cycles;
    stBusyCycles.inc(cycles);
    stTransfers.inc();
    stPrefetchTransfers.inc();
    stBytes.inc(bytes);
    return busyUntil;
}

double
Bus::utilization(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(totalBusy) / static_cast<double>(elapsed);
}

} // namespace fdip
