/**
 * @file prefetch_buffer.hh
 * The fully-associative prefetch buffer of the MICRO-32 design:
 * prefetched blocks land here instead of the L1-I so that useless
 * prefetches cannot pollute the cache. A demand hit promotes the block
 * into the L1-I and frees the entry. FIFO replacement.
 */

#ifndef FDIP_MEM_PREFETCH_BUFFER_HH
#define FDIP_MEM_PREFETCH_BUFFER_HH

#include <deque>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

class PrefetchBuffer
{
  public:
    explicit PrefetchBuffer(unsigned entries = 32);

    bool probe(Addr block_addr) const;

    /** Demand hit: remove the entry (block promotes to L1). */
    bool consume(Addr block_addr);

    /** Prefetch fill; FIFO-evicts when full (a wasted prefetch).
     *  Returns the evicted block, if any, for lifecycle attribution. */
    std::optional<Addr> insert(Addr block_addr);

    void clear();

    unsigned size() const { return static_cast<unsigned>(buf.size()); }
    unsigned capacity() const { return cap; }

    StatSet stats;

  private:
    StatSet::Counter stConsumed = stats.registerCounter("pfbuf.consumed");
    StatSet::Counter stDuplicateFills =
        stats.registerCounter("pfbuf.duplicate_fills");
    StatSet::Counter stUnusedEvictions =
        stats.registerCounter("pfbuf.unused_evictions");
    StatSet::Counter stFills = stats.registerCounter("pfbuf.fills");
    StatSet::Counter stFlushedEntries =
        stats.registerCounter("pfbuf.flushed_entries");

    struct Slot
    {
        Addr addr;
    };

    std::deque<Slot> buf;
    unsigned cap;
};

} // namespace fdip

#endif // FDIP_MEM_PREFETCH_BUFFER_HH
