#include "mem/dram.hh"

#include "common/logging.hh"

namespace fdip
{

Dram::Dram(Cycle access_latency)
    : lat(access_latency)
{
    fatal_if(lat == 0, "DRAM latency must be nonzero");
}

Cycle
Dram::accessLatency(Cycle now, bool is_prefetch)
{
    stReads.inc();
    if (is_prefetch)
        stPrefetchReads.inc();
    return lat;
}

} // namespace fdip
