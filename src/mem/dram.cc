#include "mem/dram.hh"

#include "common/logging.hh"

namespace fdip
{

Dram::Dram(Cycle access_latency)
    : lat(access_latency)
{
    fatal_if(lat == 0, "DRAM latency must be nonzero");
}

Cycle
Dram::accessLatency(Cycle now, bool is_prefetch)
{
    stats.inc("dram.reads");
    if (is_prefetch)
        stats.inc("dram.prefetch_reads");
    return lat;
}

} // namespace fdip
