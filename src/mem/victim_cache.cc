#include "mem/victim_cache.hh"

#include <algorithm>

namespace fdip
{

VictimCache::VictimCache(unsigned entries)
    : cap(entries)
{}

bool
VictimCache::probe(Addr block_addr) const
{
    return std::find(buf.begin(), buf.end(), block_addr) != buf.end();
}

bool
VictimCache::extract(Addr block_addr)
{
    auto it = std::find(buf.begin(), buf.end(), block_addr);
    if (it == buf.end())
        return false;
    buf.erase(it);
    stHits.inc();
    return true;
}

void
VictimCache::insert(Addr block_addr)
{
    if (cap == 0)
        return;
    auto it = std::find(buf.begin(), buf.end(), block_addr);
    if (it != buf.end()) {
        // Refresh: move to MRU.
        buf.erase(it);
        buf.push_back(block_addr);
        return;
    }
    if (buf.size() == cap) {
        buf.pop_front();
        stEvictions.inc();
    }
    buf.push_back(block_addr);
    stFills.inc();
}

void
VictimCache::clear()
{
    buf.clear();
}

} // namespace fdip
