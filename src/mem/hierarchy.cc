#include "mem/hierarchy.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

MemHierarchy::MemHierarchy(const MemConfig &config)
    : cfg(config), ownedShared(std::make_unique<SharedMem>(cfg)),
      l1i_(cfg.l1i), l2_(ownedShared->l2),
      vc(cfg.victimCacheEntries),
      pfBuf(cfg.prefetchBufferEntries),
      l2Bus_(ownedShared->l2Bus),
      memBus_(ownedShared->memBus),
      mshrFile(cfg.mshrs), dram(ownedShared->dram)
{
    fatal_if(cfg.l1TagPorts == 0, "L1-I needs at least one tag port");
    fatal_if(cfg.l1i.blockBytes != cfg.l2.blockBytes,
             "L1/L2 block size mismatch not supported");
}

MemHierarchy::MemHierarchy(const MemConfig &config, SharedMem &shared,
                           unsigned core_id, unsigned num_cores)
    : cfg(config), l1i_(cfg.l1i), l2_(shared.l2),
      vc(cfg.victimCacheEntries),
      pfBuf(cfg.prefetchBufferEntries),
      l2Bus_(shared.l2Bus),
      memBus_(shared.memBus),
      mshrFile(cfg.mshrs), dram(shared.dram),
      coreId_(core_id), multiCore_(num_cores > 1)
{
    fatal_if(cfg.l1TagPorts == 0, "L1-I needs at least one tag port");
    fatal_if(cfg.l1i.blockBytes != cfg.l2.blockBytes,
             "L1/L2 block size mismatch not supported");
    fatal_if(core_id >= num_cores, "core id out of range");
}

void
MemHierarchy::tick(Cycle now)
{
    portsUsed = 0;
    for (MshrEntry *e : mshrFile.ready(now)) {
        if (e->fillL2) {
            auto victim = l2_.insert(sharedTag(e->blockAddr));
            attr_.onL2Fill(sharedTag(e->blockAddr), victim,
                           e->isPrefetch);
        }
        switch (e->dest) {
          case FillDest::DemandL1:
            installL1(e->blockAddr, /*first_use_tag=*/true);
            if (e->isPrefetch)
                attr_.onFill(e->blockAddr, now);
            break;
          case FillDest::PrefetchBuffer:
            if (auto evicted = pfBuf.insert(e->blockAddr))
                attr_.onEvictUnused(*evicted);
            attr_.onFill(e->blockAddr, now);
            break;
          case FillDest::StreamBuffer:
            // Fill attribution first, so an orphaned fill (stream
            // reallocated meanwhile) evict-classifies with a complete
            // lifecycle inside the client callback.
            attr_.onFill(e->blockAddr, now);
            if (streamFill) {
                streamFill->streamFill(e->streamId, e->slotId,
                                       e->blockAddr);
            }
            break;
        }
        mshrFile.free(*e);
    }
}

Cycle
MemHierarchy::nextEventCycle(Cycle now) const
{
    Cycle next = mshrFile.nextReadyCycle();
    // Bus releases are subsumed by the fills they belong to today, but
    // fold them in so the protocol stays correct if that ever changes.
    for (const Bus *bus : {&l2Bus_, &memBus_}) {
        Cycle free_at = bus->freeAtCycle();
        if (free_at > now && free_at < next)
            next = free_at;
    }
    return next <= now ? now + 1 : next;
}

void
MemHierarchy::installL1(Addr block_addr, bool first_use_tag)
{
    auto evicted = l1i_.insert(block_addr, first_use_tag);
    if (evicted && vc.enabled())
        vc.insert(*evicted);
}

bool
MemHierarchy::reserveTagPort()
{
    if (portsUsed >= cfg.l1TagPorts)
        return false;
    ++portsUsed;
    return true;
}

unsigned
MemHierarchy::freeTagPorts() const
{
    return cfg.l1TagPorts - portsUsed;
}

bool
MemHierarchy::tagProbe(Addr addr) const
{
    return l1i_.probe(l1i_.blockAlign(addr));
}

bool
MemHierarchy::prefetchRedundant(Addr addr) const
{
    Addr block = l1i_.blockAlign(addr);
    return pfBuf.probe(block) || mshrFile.find(block) != nullptr;
}

Cycle
MemHierarchy::fillLatency(Addr block_addr, Cycle now, bool is_prefetch,
                          bool &fills_l2, bool &granted)
{
    granted = true;
    fills_l2 = false;
    bool idle_only = is_prefetch && !cfg.prefetchMayQueueOnBus;
    // The per-core bus-share counters stay silent on a single-core
    // machine so its stat output is unchanged.
    auto charge_l2bus = [this] {
        if (multiCore_) {
            stL2BusShareCycles.inc(
                divCeil(cfg.l1i.blockBytes, cfg.l2BusBytesPerCycle));
            stL2BusShareTransfers.inc();
        }
    };
    auto charge_membus = [this] {
        if (multiCore_) {
            stMemBusShareCycles.inc(
                divCeil(cfg.l2.blockBytes, cfg.memBusBytesPerCycle));
            stMemBusShareTransfers.inc();
        }
    };
    if (l2_.access(sharedTag(block_addr))) {
        // L2 hit: pay L2 latency plus the L1<->L2 transfer.
        if (idle_only) {
            auto done = l2Bus_.tryTransfer(now + cfg.l2HitLatency,
                                           cfg.l1i.blockBytes);
            if (!done) {
                granted = false;
                return neverCycle;
            }
            charge_l2bus();
            return *done;
        }
        charge_l2bus();
        return l2Bus_.transfer(now + cfg.l2HitLatency,
                               cfg.l1i.blockBytes);
    }
    // L2 miss: memory access plus both bus transfers.
    fills_l2 = true;
    if (!is_prefetch)
        attr_.onL2DemandMiss(sharedTag(block_addr));
    Cycle dram_lat = dram.accessLatency(now, is_prefetch);
    Cycle mem_done;
    if (idle_only) {
        auto done = memBus_.tryTransfer(now + cfg.l2HitLatency + dram_lat,
                                        cfg.l2.blockBytes);
        if (!done) {
            granted = false;
            return neverCycle;
        }
        mem_done = *done;
        auto l1_done = l2Bus_.tryTransfer(mem_done, cfg.l1i.blockBytes);
        if (!l1_done) {
            granted = false;
            return neverCycle;
        }
        charge_membus();
        charge_l2bus();
        return *l1_done;
    }
    charge_membus();
    charge_l2bus();
    mem_done = memBus_.transfer(now + cfg.l2HitLatency + dram_lat,
                                cfg.l2.blockBytes);
    return l2Bus_.transfer(mem_done, cfg.l1i.blockBytes);
}

FetchAccess
MemHierarchy::demandFetch(Addr addr, Cycle now)
{
    FetchAccess res;
    Addr block = l1i_.blockAlign(addr);
    stDemandAccesses.inc();

    if (l1i_.access(block)) {
        res.hitL1 = true;
        res.readyAt = now + cfg.l1HitLatency;
        return res;
    }

    // Victim cache: catches recent conflict evictions; a hit swaps
    // the block back into the L1 with one extra cycle of latency.
    if (vc.enabled() && vc.extract(block)) {
        installL1(block, /*first_use_tag=*/false);
        res.hitL1 = true;
        res.readyAt = now + cfg.l1HitLatency + 1;
        stVictimHits.inc();
        return res;
    }

    // Probed in parallel with the L1 tags: the prefetch buffer.
    if (pfBuf.consume(block)) {
        installL1(block, /*first_use_tag=*/false);
        res.hitPrefetchBuffer = true;
        res.readyAt = now + cfg.l1HitLatency;
        stPfbufHits.inc();
        attr_.onConsume(block, now);
        return res;
    }

    // Stream buffers (when configured) are probed next.
    if (streamProbe && streamProbe->probeAndConsume(block, now)) {
        installL1(block, /*first_use_tag=*/false);
        res.hitStreamBuffer = true;
        res.readyAt = now + cfg.l1HitLatency;
        stStreambufHits.inc();
        attr_.onConsume(block, now);
        return res;
    }

    stDemandMisses.inc();

    // Merge with an in-flight fill: the demand inherits its timing.
    if (MshrEntry *e = mshrFile.find(block)) {
        res.mergedInflight = true;
        res.mergedInflightPrefetch = e->isPrefetch;
        res.readyAt = e->readyAt > now ? e->readyAt : now + 1;
        if (e->dest != FillDest::DemandL1) {
            // Retarget the fill straight into the L1.
            e->dest = FillDest::DemandL1;
            stInflightRetargets.inc();
        }
        stInflightMerges.inc();
        if (e->isPrefetch) {
            stInflightPrefetchMerges.inc();
            attr_.onDemandMerge(block, now);
        }
        return res;
    }

    if (mshrFile.full()) {
        // MSHR pressure: the fetch engine retries next cycle.
        res.retry = true;
        stDemandMshrStalls.inc();
        return res;
    }

    bool fills_l2 = false;
    bool granted = false;
    Cycle ready = fillLatency(block, now, /*is_prefetch=*/false,
                              fills_l2, granted);
    panic_if(!granted, "demand fill must always be granted");

    MshrEntry *e = mshrFile.allocate(block, ready, /*is_prefetch=*/false,
                                     FillDest::DemandL1);
    panic_if(e == nullptr, "MSHR availability checked above");
    e->fillL2 = fills_l2;
    res.readyAt = ready;
    return res;
}

MemHierarchy::PfIssue
MemHierarchy::issuePrefetch(Addr addr, Cycle now, FillDest dest,
                            std::uint32_t stream_id, std::uint32_t slot_id)
{
    Addr block = l1i_.blockAlign(addr);
    stPrefetchAttempts.inc();

    if (prefetchRedundant(block)) {
        stPrefetchRedundant.inc();
        return PfIssue::Redundant;
    }
    if (mshrFile.prefetchesInFlight() >= maxPrefetches ||
        mshrFile.full()) {
        stPrefetchMshrStalls.inc();
        return PfIssue::NoResource;
    }

    bool fills_l2 = false;
    bool granted = false;
    Cycle ready = fillLatency(block, now, /*is_prefetch=*/true,
                              fills_l2, granted);
    if (!granted) {
        stPrefetchBusStalls.inc();
        return PfIssue::NoResource;
    }

    MshrEntry *e = mshrFile.allocate(block, ready, /*is_prefetch=*/true,
                                     dest);
    panic_if(e == nullptr, "MSHR availability checked above");
    e->fillL2 = fills_l2;
    e->streamId = stream_id;
    e->slotId = slot_id;
    stPrefetchesIssued.inc();
    attr_.onIssue(block, now);
    return PfIssue::Issued;
}

void
MemHierarchy::collectStats(StatSet &out, bool include_shared) const
{
    out.merge(stats);
    out.merge(l1i_.stats, "l1i.");
    if (include_shared)
        out.merge(l2_.stats, "l2.");
    out.merge(vc.stats);
    out.merge(pfBuf.stats);
    if (include_shared) {
        out.merge(l2Bus_.stats, "l2bus.");
        out.merge(memBus_.stats, "membus.");
    }
    out.merge(mshrFile.stats);
    if (include_shared)
        out.merge(dram.stats);
    out.merge(attr_.stats);
}

} // namespace fdip
