/**
 * @file hierarchy.hh
 * The instruction-side memory hierarchy: multi-ported L1-I tags, the
 * fully-associative prefetch buffer, a unified L2, the L1<->L2 and
 * L2<->memory buses, MSHRs, and DRAM. This is the single point through
 * which the fetch engine and every prefetcher touch memory, so demand
 * priority, bandwidth contention, and in-flight merging live here.
 */

#ifndef FDIP_MEM_HIERARCHY_HH
#define FDIP_MEM_HIERARCHY_HH

#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"
#include "mem/prefetch_buffer.hh"
#include "mem/shared_mem.hh"
#include "mem/victim_cache.hh"
#include "obs/attribution.hh"

namespace fdip
{

/** Receives completed stream-buffer fills. */
class StreamFillClient
{
  public:
    virtual ~StreamFillClient() = default;
    virtual void streamFill(std::uint32_t stream_id, std::uint32_t slot_id,
                            Addr block_addr) = 0;
};

/** Lets a stream buffer service demand misses before they go to L2. */
class StreamProbeClient
{
  public:
    virtual ~StreamProbeClient() = default;
    /** Return true (and shift/refill) if the block is held. */
    virtual bool probeAndConsume(Addr block_addr, Cycle now) = 0;
};

struct MemConfig
{
    Cache::Config l1i{.name = "l1i", .sizeBytes = 16 * 1024,
                      .assoc = 2, .blockBytes = 32};
    unsigned l1TagPorts = 2;
    Cycle l1HitLatency = 1;

    Cache::Config l2{.name = "l2", .sizeBytes = 1024 * 1024,
                     .assoc = 8, .blockBytes = 32};
    Cycle l2HitLatency = 12;

    Cycle dramLatency = 70;
    unsigned l2BusBytesPerCycle = 8;
    unsigned memBusBytesPerCycle = 4;

    unsigned mshrs = 16;
    unsigned prefetchBufferEntries = 32;
    /** Victim cache beside the L1-I; 0 disables (the default). */
    unsigned victimCacheEntries = 0;
    /**
     * Ablation: allow prefetch transfers to queue on busy buses
     * (delaying later demand traffic) instead of the default
     * idle-bus-only policy.
     */
    bool prefetchMayQueueOnBus = false;
};

/** Outcome of one demand-fetch block access. */
struct FetchAccess
{
    bool hitL1 = false;
    bool hitPrefetchBuffer = false;
    bool hitStreamBuffer = false;
    bool mergedInflight = false;       ///< joined an in-flight fill
    bool mergedInflightPrefetch = false;
    bool retry = false;                ///< no MSHR; try again next cycle
    Cycle readyAt = neverCycle;        ///< when instructions can stream
};

class MemHierarchy
{
  public:
    /** Single-core form: owns a private SharedMem (L2/buses/DRAM). */
    explicit MemHierarchy(const MemConfig &config);

    /**
     * Multi-core form: core @p core_id's private L1-I/MSHRs/buffers in
     * front of externally owned shared components. Requests reaching
     * the shared L2 are tagged with the core id (private address
     * spaces: no constructive sharing between cores), and the per-core
     * mem.l2bus_* and mem.membus_* share counters are enabled when
     * @p num_cores > 1.
     */
    MemHierarchy(const MemConfig &config, SharedMem &shared,
                 unsigned core_id, unsigned num_cores);

    /** Per-cycle maintenance: complete fills, reset tag ports. */
    void tick(Cycle now);

    /**
     * Quiescence protocol: the earliest future cycle at which this
     * hierarchy changes state on its own — the next MSHR fill
     * completion or bus-release time. kNever when nothing is in
     * flight. Never returns a cycle <= @p now.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Demand fetch of the block containing @p addr. Probes L1, the
     * prefetch buffer, stream buffers, and in-flight fills, in that
     * order; allocates an MSHR and goes to L2/memory on a true miss.
     * The caller must have reserved a tag port for this cycle.
     */
    FetchAccess demandFetch(Addr addr, Cycle now);

    /** Outcome of a prefetch issue attempt. */
    enum class PfIssue
    {
        Issued,      ///< request is on its way
        Redundant,   ///< block already buffered or in flight
        NoResource,  ///< MSHR/bus/budget exhausted: retry later
    };

    /**
     * Issue a prefetch for @p addr into @p dest. Redundant when the
     * block is already in flight or buffered; NoResource when the
     * prefetch budget, MSHRs, or the required bus are exhausted.
     */
    PfIssue issuePrefetch(Addr addr, Cycle now, FillDest dest,
                          std::uint32_t stream_id = 0,
                          std::uint32_t slot_id = 0);

    /** Cache-probe filter check: is the block in the L1-I? Tag check
     *  only; the caller must have reserved a tag port. */
    bool tagProbe(Addr addr) const;

    /** True when a prefetch for @p addr would be redundant. */
    bool prefetchRedundant(Addr addr) const;

    /** Tag-port arbitration, reset each cycle. */
    bool reserveTagPort();
    unsigned freeTagPorts() const;

    void setStreamFillClient(StreamFillClient *client)
    {
        streamFill = client;
    }

    void setStreamProbeClient(StreamProbeClient *client)
    {
        streamProbe = client;
    }

    void setMaxOutstandingPrefetches(unsigned n)
    {
        maxPrefetches = n;
    }

    /** Prefetch lifecycle attribution (always on; tracer optional). */
    PrefetchAttribution &prefetchAttribution() { return attr_; }

    /** Route prefetch lifecycle spans to @p t (null disables). */
    void setTracer(Tracer *t) { attr_.setTracer(t); }
    Tracer *tracer() const { return attr_.tracer(); }

    Cache &l1i() { return l1i_; }
    VictimCache &victimCache() { return vc; }
    Cache &l2() { return l2_; }
    PrefetchBuffer &pfBuffer() { return pfBuf; }
    Bus &l2Bus() { return l2Bus_; }
    Bus &memBus() { return memBus_; }
    MshrFile &mshrs() { return mshrFile; }
    const MemConfig &config() const { return cfg; }
    unsigned coreId() const { return coreId_; }

    /**
     * Aggregate statistics into @p out. With @p include_shared false,
     * only this core's private components are collected (the caller
     * merges the SharedMem stats once, not once per core).
     */
    void collectStats(StatSet &out, bool include_shared = true) const;

    StatSet stats;

  private:
    StatSet::Counter stDemandAccesses =
        stats.registerCounter("mem.demand_accesses");
    StatSet::Counter stVictimHits = stats.registerCounter("mem.victim_hits");
    StatSet::Counter stPfbufHits = stats.registerCounter("mem.pfbuf_hits");
    StatSet::Counter stStreambufHits =
        stats.registerCounter("mem.streambuf_hits");
    StatSet::Counter stDemandMisses =
        stats.registerCounter("mem.demand_misses");
    StatSet::Counter stInflightRetargets =
        stats.registerCounter("mem.inflight_retargets");
    StatSet::Counter stInflightMerges =
        stats.registerCounter("mem.inflight_merges");
    StatSet::Counter stInflightPrefetchMerges =
        stats.registerCounter("mem.inflight_prefetch_merges");
    StatSet::Counter stDemandMshrStalls =
        stats.registerCounter("mem.demand_mshr_stalls");
    StatSet::Counter stPrefetchAttempts =
        stats.registerCounter("mem.prefetch_attempts");
    StatSet::Counter stPrefetchRedundant =
        stats.registerCounter("mem.prefetch_redundant");
    StatSet::Counter stPrefetchMshrStalls =
        stats.registerCounter("mem.prefetch_mshr_stalls");
    StatSet::Counter stPrefetchBusStalls =
        stats.registerCounter("mem.prefetch_bus_stalls");
    StatSet::Counter stPrefetchesIssued =
        stats.registerCounter("mem.prefetches_issued");
    /**
     * Per-core share of the shared buses, incremented only on a
     * multi-core machine (so single-core stat output is unchanged):
     * the cycles and transfer counts this core's fills occupied each
     * bus for. The bus's own bus.busy_cycles counters keep the total.
     */
    StatSet::Counter stL2BusShareCycles =
        stats.registerCounter("mem.l2bus_busy_cycles");
    StatSet::Counter stL2BusShareTransfers =
        stats.registerCounter("mem.l2bus_transfers");
    StatSet::Counter stMemBusShareCycles =
        stats.registerCounter("mem.membus_busy_cycles");
    StatSet::Counter stMemBusShareTransfers =
        stats.registerCounter("mem.membus_transfers");

    /** L2 lookup + bus/memory scheduling for a missing block. */
    Cycle fillLatency(Addr block_addr, Cycle now, bool is_prefetch,
                      bool &fills_l2, bool &granted);

    /** Install into the L1, spilling any victim to the victim cache. */
    void installL1(Addr block_addr, bool first_use_tag);

    /**
     * Tag an L1-side block address with this core's id before it
     * reaches the shared L2 / attribution victim map. Cores model
     * private address spaces, so same-numbered blocks from different
     * cores are distinct lines. Identity for core 0, hence for every
     * single-core machine.
     */
    Addr sharedTag(Addr block_addr) const
    {
        return block_addr | (static_cast<Addr>(coreId_) << 56);
    }

    MemConfig cfg;
    /** Non-null only for the single-core ctor. */
    std::unique_ptr<SharedMem> ownedShared;
    Cache l1i_;
    Cache &l2_;
    VictimCache vc;
    PrefetchBuffer pfBuf;
    Bus &l2Bus_;
    Bus &memBus_;
    MshrFile mshrFile;
    Dram &dram;
    PrefetchAttribution attr_;
    StreamFillClient *streamFill = nullptr;
    StreamProbeClient *streamProbe = nullptr;
    unsigned portsUsed = 0;
    unsigned maxPrefetches = 8;
    unsigned coreId_ = 0;
    /** True when this hierarchy shares its L2/buses with other cores. */
    bool multiCore_ = false;
};

} // namespace fdip

#endif // FDIP_MEM_HIERARCHY_HH
