#include "mem/shared_mem.hh"

#include "mem/hierarchy.hh"

namespace fdip
{

SharedMem::SharedMem(const MemConfig &config)
    : l2(config.l2),
      l2Bus("l2bus", config.l2BusBytesPerCycle),
      memBus("membus", config.memBusBytesPerCycle),
      dram(config.dramLatency)
{
}

Cycle
SharedMem::nextEventCycle(Cycle now) const
{
    Cycle next = kNever;
    for (const Bus *bus : {&l2Bus, &memBus}) {
        Cycle free_at = bus->freeAtCycle();
        if (free_at > now && free_at < next)
            next = free_at;
    }
    return next;
}

void
SharedMem::collectStats(StatSet &out) const
{
    out.merge(l2.stats, "l2.");
    out.merge(l2Bus.stats, "l2bus.");
    out.merge(memBus.stats, "membus.");
    out.merge(dram.stats);
}

} // namespace fdip
