/**
 * @file mshr.hh
 * Miss status holding registers: track outstanding fills so demand
 * misses can merge with in-flight prefetches (partial latency hiding)
 * and duplicate requests are suppressed.
 */

#ifndef FDIP_MEM_MSHR_HH
#define FDIP_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

/** Where a completed fill should be delivered. */
enum class FillDest : std::uint8_t
{
    DemandL1,        ///< straight into the L1-I
    PrefetchBuffer,  ///< into the fully-associative prefetch buffer
    StreamBuffer,    ///< into a stream-buffer slot
};

struct MshrEntry
{
    bool valid = false;
    Addr blockAddr = invalidAddr;
    Cycle readyAt = neverCycle;
    bool isPrefetch = false;
    bool fillL2 = false;   ///< the fill also installs into the L2
    FillDest dest = FillDest::DemandL1;
    std::uint32_t streamId = 0;
    std::uint32_t slotId = 0;
};

class MshrFile
{
  public:
    explicit MshrFile(unsigned entries = 16);

    MshrEntry *find(Addr block_addr);
    const MshrEntry *find(Addr block_addr) const;

    /** Allocate an entry; nullptr when the file is full. */
    MshrEntry *allocate(Addr block_addr, Cycle ready_at, bool is_prefetch,
                        FillDest dest);

    void free(MshrEntry &entry);

    bool full() const;
    unsigned inUse() const;
    unsigned prefetchesInFlight() const;
    unsigned capacity() const
    {
        return static_cast<unsigned>(entries.size());
    }

    /**
     * Collect entries whose fill has arrived (readyAt <= now). The
     * caller dispatches and then frees them.
     */
    std::vector<MshrEntry *> ready(Cycle now);

    /** Earliest in-flight fill completion; kNever when idle. */
    Cycle nextReadyCycle() const;

    void clear();

    StatSet stats;

  private:
    StatSet::Counter stAllocations =
        stats.registerCounter("mshr.allocations");
    StatSet::Counter stAllocFailures =
        stats.registerCounter("mshr.alloc_failures");

    std::vector<MshrEntry> entries;
};

} // namespace fdip

#endif // FDIP_MEM_MSHR_HH
