/**
 * @file dram.hh
 * Fixed-latency main-memory model with access accounting.
 */

#ifndef FDIP_MEM_DRAM_HH
#define FDIP_MEM_DRAM_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

class Dram
{
  public:
    explicit Dram(Cycle access_latency = 70);

    /** Latency of one block read starting at @p now. */
    Cycle accessLatency(Cycle now, bool is_prefetch);

    Cycle latency() const { return lat; }

    StatSet stats;

  private:
    StatSet::Counter stReads = stats.registerCounter("dram.reads");
    StatSet::Counter stPrefetchReads =
        stats.registerCounter("dram.prefetch_reads");

    Cycle lat;
};

} // namespace fdip

#endif // FDIP_MEM_DRAM_HH
