#include "mem/mshr.hh"

#include "common/logging.hh"

namespace fdip
{

MshrFile::MshrFile(unsigned n)
    : entries(n)
{
    fatal_if(n == 0, "MSHR file needs at least one entry");
}

MshrEntry *
MshrFile::find(Addr block_addr)
{
    for (auto &e : entries) {
        if (e.valid && e.blockAddr == block_addr)
            return &e;
    }
    return nullptr;
}

const MshrEntry *
MshrFile::find(Addr block_addr) const
{
    return const_cast<MshrFile *>(this)->find(block_addr);
}

MshrEntry *
MshrFile::allocate(Addr block_addr, Cycle ready_at, bool is_prefetch,
                   FillDest dest)
{
    panic_if(find(block_addr) != nullptr,
             "duplicate MSHR allocation for %#llx",
             static_cast<unsigned long long>(block_addr));
    for (auto &e : entries) {
        if (!e.valid) {
            e.valid = true;
            e.blockAddr = block_addr;
            e.readyAt = ready_at;
            e.isPrefetch = is_prefetch;
            e.fillL2 = false;
            e.dest = dest;
            e.streamId = 0;
            e.slotId = 0;
            stAllocations.inc();
            return &e;
        }
    }
    stAllocFailures.inc();
    return nullptr;
}

void
MshrFile::free(MshrEntry &entry)
{
    panic_if(!entry.valid, "freeing invalid MSHR entry");
    entry.valid = false;
}

bool
MshrFile::full() const
{
    for (const auto &e : entries) {
        if (!e.valid)
            return false;
    }
    return true;
}

unsigned
MshrFile::inUse() const
{
    unsigned n = 0;
    for (const auto &e : entries) {
        if (e.valid)
            ++n;
    }
    return n;
}

unsigned
MshrFile::prefetchesInFlight() const
{
    unsigned n = 0;
    for (const auto &e : entries) {
        if (e.valid && e.isPrefetch)
            ++n;
    }
    return n;
}

std::vector<MshrEntry *>
MshrFile::ready(Cycle now)
{
    std::vector<MshrEntry *> out;
    for (auto &e : entries) {
        if (e.valid && e.readyAt <= now)
            out.push_back(&e);
    }
    return out;
}

Cycle
MshrFile::nextReadyCycle() const
{
    Cycle next = kNever;
    for (const auto &e : entries) {
        if (e.valid && e.readyAt < next)
            next = e.readyAt;
    }
    return next;
}

void
MshrFile::clear()
{
    for (auto &e : entries)
        e.valid = false;
}

} // namespace fdip
