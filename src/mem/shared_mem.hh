/**
 * @file shared_mem.hh
 * The memory-system components shared by every core: the unified L2,
 * the L1<->L2 and L2<->memory buses, and DRAM. A single-core machine
 * owns one of these privately inside its MemHierarchy; a multi-core
 * machine (SimConfig::numCores > 1) builds one SharedMem up front and
 * hands every core's MemHierarchy a reference, so all cores contend
 * for the same capacity and bandwidth (docs/MULTICORE.md).
 */

#ifndef FDIP_MEM_SHARED_MEM_HH
#define FDIP_MEM_SHARED_MEM_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace fdip
{

struct MemConfig;

class SharedMem
{
  public:
    explicit SharedMem(const struct MemConfig &config);

    /**
     * Quiescence protocol: the earliest future bus-release cycle, or
     * kNever when both buses are idle. The L2 and DRAM are purely
     * reactive (no self-driven state changes), so bus releases are the
     * only events this subsystem contributes. Never returns <= @p now.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Aggregate the shared components' statistics into @p out. */
    void collectStats(StatSet &out) const;

    Cache l2;
    Bus l2Bus;
    Bus memBus;
    Dram dram;
};

} // namespace fdip

#endif // FDIP_MEM_SHARED_MEM_HH
